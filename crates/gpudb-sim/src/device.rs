//! The device facade: a stateful GPU with textures, a framebuffer, bound
//! fragment programs, and draw calls — the simulated equivalent of an
//! OpenGL context on a GeForce FX 5900 Ultra.

use crate::buffers::Framebuffer;
use crate::cost::{DrawCost, HardwareProfile};
use crate::error::{GpuError, GpuResult};
use crate::fault::{FaultInjector, FaultKind, FaultStats};
use crate::program::isa::{FragmentProgram, NUM_PARAMS, NUM_TEXTURE_UNITS};
use crate::raster::{rasterize, DrawInputs, Rect};
use crate::span::{SpanKind, SpanSink};
use crate::state::{
    AlphaState, ColorMask, CompareFunc, DepthBoundsState, PipelineState, ScissorState, StencilOp,
};
use crate::stats::{GpuStats, Phase};
use crate::texture::{Texture, TextureId};
use crate::trace::{
    DeviceCaps, DrawPass, PassOp, PassPlan, ProgramInfo, RecordMode, TraceRecorder,
};
use std::time::Instant;

/// Default video memory budget: the paper's card had 256 MB.
pub const DEFAULT_VRAM_BYTES: usize = 256 << 20;

/// A simulated GPU device.
///
/// All mutation goes through `&mut self`; the device is cheap to move and
/// can be wrapped in a `parking_lot::Mutex` for shared use.
pub struct Gpu {
    profile: HardwareProfile,
    fb: Framebuffer,
    textures: Vec<Option<Texture>>,
    free_ids: Vec<u32>,
    bound_textures: [Option<TextureId>; NUM_TEXTURE_UNITS],
    program: Option<FragmentProgram>,
    env: [[f32; 4]; NUM_PARAMS],
    state: PipelineState,
    draw_color: [f32; 4],
    early_z: bool,
    /// Pass count accumulated by the active occlusion query, if any.
    occlusion: Option<u64>,
    phase: Phase,
    stats: GpuStats,
    vram_budget: usize,
    vram_used: usize,
    recorder: Option<TraceRecorder>,
    span_sink: Option<Box<dyn SpanSink>>,
    fault_injector: Option<FaultInjector>,
}

// Devices cross thread boundaries in sharded multi-device execution —
// one worker thread owns each shard's `Gpu`. Keep the device `Send`
// (the `SpanSink` trait object carries a `Send` bound for this reason).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Gpu>();
};

impl Gpu {
    /// Create a device with an explicit hardware profile and framebuffer
    /// dimensions.
    pub fn new(profile: HardwareProfile, width: usize, height: usize) -> Gpu {
        let fb = Framebuffer::new(width, height);
        let vram_used = fb.byte_size();
        Gpu {
            profile,
            fb,
            textures: Vec::new(),
            free_ids: Vec::new(),
            bound_textures: [None; NUM_TEXTURE_UNITS],
            program: None,
            env: [[0.0; 4]; NUM_PARAMS],
            state: PipelineState::default(),
            draw_color: [1.0; 4],
            early_z: true,
            occlusion: None,
            phase: Phase::Other,
            stats: GpuStats::default(),
            vram_budget: DEFAULT_VRAM_BYTES,
            vram_used,
            recorder: None,
            span_sink: None,
            fault_injector: None,
        }
    }

    /// Create a device modeled on the paper's GeForce FX 5900 Ultra.
    pub fn geforce_fx_5900(width: usize, height: usize) -> Gpu {
        Gpu::new(HardwareProfile::geforce_fx_5900(), width, height)
    }

    /// The hardware profile driving the cost model.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Framebuffer width in pixels.
    pub fn width(&self) -> usize {
        self.fb.width()
    }

    /// Framebuffer height in pixels.
    pub fn height(&self) -> usize {
        self.fb.height()
    }

    /// Override the video memory budget (for out-of-memory testing).
    pub fn set_vram_budget(&mut self, bytes: usize) {
        self.vram_budget = bytes;
    }

    /// Video memory currently allocated (framebuffer + textures).
    pub fn vram_used(&self) -> usize {
        self.vram_used
    }

    /// Enable or disable the early-z optimization (§6.2.1). Results are
    /// unaffected; only the modeled cost of shading changes.
    pub fn set_early_z(&mut self, enabled: bool) {
        self.early_z = enabled;
    }

    // ------------------------------------------------------------------
    // Pass-plan tracing
    // ------------------------------------------------------------------

    /// Start recording device operations as [`PassPlan`] IR.
    ///
    /// In [`RecordMode::RecordAndExecute`] recording is purely passive:
    /// results, statistics and modeled costs are bit-identical to an
    /// untraced run. In [`RecordMode::RecordOnly`] draws, clears, copies
    /// and readbacks validate their arguments and record ops but do not
    /// touch the framebuffer or charge any modeled cost.
    pub fn enable_tracing(&mut self, mode: RecordMode) {
        let caps = DeviceCaps {
            has_depth_bounds: self.profile.has_depth_bounds,
            has_depth_compare_mask: self.profile.has_depth_compare_mask,
        };
        self.recorder = Some(TraceRecorder::new(mode, caps));
    }

    /// Stop recording, discarding any plans not yet taken.
    pub fn disable_tracing(&mut self) {
        self.recorder = None;
    }

    /// Whether a trace recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Close the current plan (if any) and start a new one labeled
    /// `label`. No-op when tracing is disabled.
    pub fn begin_plan(&mut self, label: &str) {
        if let Some(rec) = &mut self.recorder {
            rec.begin_plan(label);
        }
    }

    /// Drain all recorded plans, closing the open one. Returns an empty
    /// vector when tracing is disabled.
    pub fn take_plans(&mut self) -> Vec<PassPlan> {
        self.recorder
            .as_mut()
            .map(TraceRecorder::take_plans)
            .unwrap_or_default()
    }

    /// Append an op to the active recorder, if any.
    fn record(&mut self, op: PassOp) {
        if let Some(rec) = &mut self.recorder {
            rec.record(op);
        }
    }

    /// Whether the device is in record-only (dry run) mode.
    fn record_only(&self) -> bool {
        matches!(
            self.recorder.as_ref().map(TraceRecorder::mode),
            Some(RecordMode::RecordOnly)
        )
    }

    // ------------------------------------------------------------------
    // Span tracing
    // ------------------------------------------------------------------

    /// Attach a span sink. The device will open leaf spans around every
    /// costed operation and emit instant events for cheap calls, all
    /// timestamped on the modeled clock ([`Gpu::modeled_clock_ns`]) so the
    /// resulting trace is deterministic. Attaching a sink never changes
    /// results, statistics, or modeled cost.
    pub fn attach_span_sink(&mut self, sink: Box<dyn SpanSink>) {
        self.span_sink = Some(sink);
    }

    /// Detach and return the span sink, if any.
    pub fn take_span_sink(&mut self) -> Option<Box<dyn SpanSink>> {
        self.span_sink.take()
    }

    /// Whether a span sink is attached.
    pub fn has_span_sink(&self) -> bool {
        self.span_sink.is_some()
    }

    /// The modeled clock: cumulative modeled cost in nanoseconds, rounded
    /// to the nearest integer. Deterministic, unlike wall clock.
    pub fn modeled_clock_ns(&self) -> u64 {
        (self.stats.modeled.total() * 1e9).round() as u64
    }

    /// Open a span on the attached sink (no-op without one). Higher layers
    /// use this for query / plan-stage / operator spans; the device itself
    /// opens the pass / readback / upload leaves.
    pub fn span_begin(&mut self, kind: SpanKind, name: &str) {
        if self.span_sink.is_none() {
            return;
        }
        let clock = self.modeled_clock_ns();
        let counters = self.stats.counters();
        if let Some(sink) = &mut self.span_sink {
            sink.begin_span(kind, name, clock, &counters);
        }
    }

    /// Close the most recently opened span on the attached sink (no-op
    /// without one).
    pub fn span_end(&mut self) {
        if self.span_sink.is_none() {
            return;
        }
        let clock = self.modeled_clock_ns();
        let counters = self.stats.counters();
        if let Some(sink) = &mut self.span_sink {
            sink.end_span(clock, &counters);
        }
    }

    /// Emit an instant event on the attached sink (no-op without one).
    fn span_instant(&mut self, name: &str, detail: &str) {
        if self.span_sink.is_none() {
            return;
        }
        let clock = self.modeled_clock_ns();
        if let Some(sink) = &mut self.span_sink {
            sink.instant(name, detail, clock);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Attach a deterministic fault injector. Fault-prone operations
    /// (texture allocation, occlusion retrieval, readbacks, draws) poll it
    /// against the modeled clock and fail with typed errors when an event
    /// fires. Replaces any previously attached injector.
    pub fn attach_fault_injector(&mut self, injector: FaultInjector) {
        self.fault_injector = Some(injector);
    }

    /// Detach and return the fault injector (with its fired/pending
    /// state), if any.
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.fault_injector.take()
    }

    /// Whether a fault injector is attached.
    pub fn has_fault_injector(&self) -> bool {
        self.fault_injector.is_some()
    }

    /// Counts of faults fired so far by the attached injector (all zeros
    /// without one).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_injector
            .as_ref()
            .map(FaultInjector::fired)
            .unwrap_or_default()
    }

    /// Poll the injector for a fault striking an operation of `kind` at
    /// the current modeled time. Device resets outrank kind-specific
    /// events and immediately wipe the context. Faults never fire during
    /// record-only dry runs (an EXPLAIN must not consume chaos events).
    fn poll_fault(&mut self, kind: FaultKind) -> Option<FaultKind> {
        if self.record_only() {
            return None;
        }
        let now = self.modeled_clock_ns();
        let fired = self.fault_injector.as_mut()?.poll(kind, now)?;
        if fired == FaultKind::DeviceReset {
            self.perform_device_reset();
        }
        if self.span_sink.is_some() {
            let name = format!("fault:{}", fired.name());
            self.span_instant(&name, "");
        }
        Some(fired)
    }

    /// Wipe the device as a driver reset would: every texture, binding,
    /// program, parameter, pipeline state bit, and framebuffer byte is
    /// lost. Accumulated statistics (and hence the modeled clock) are
    /// preserved so fault schedules stay monotonic across the reset, and
    /// the trace recorder / span sink stay attached — observability
    /// survives the fault it is observing.
    fn perform_device_reset(&mut self) {
        self.textures.clear();
        self.free_ids.clear();
        self.bound_textures = [None; NUM_TEXTURE_UNITS];
        self.program = None;
        self.env = [[0.0; 4]; NUM_PARAMS];
        self.state = PipelineState::default();
        self.draw_color = [1.0; 4];
        self.occlusion = None;
        self.fb = Framebuffer::new(self.fb.width(), self.fb.height());
        self.vram_used = self.fb.byte_size();
    }

    // ------------------------------------------------------------------
    // Phase attribution & statistics
    // ------------------------------------------------------------------

    /// Attribute subsequent work to a phase.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &GpuStats {
        &self.stats
    }

    /// Reset the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Textures
    // ------------------------------------------------------------------

    /// Upload a texture to the device (costed as an AGP transfer).
    pub fn create_texture(&mut self, texture: Texture) -> GpuResult<TextureId> {
        let bytes = texture.byte_size();
        match self.poll_fault(FaultKind::AllocationFail) {
            Some(FaultKind::DeviceReset) => return Err(GpuError::DeviceReset),
            Some(_) => {
                // An injected allocation refusal (fragmentation / driver
                // denial) surfaces as the same error as a genuine
                // over-budget request so one out-of-core ladder covers both.
                return Err(GpuError::OutOfVideoMemory {
                    requested: bytes,
                    available: self.vram_budget.saturating_sub(self.vram_used),
                });
            }
            None => {}
        }
        if self.vram_used + bytes > self.vram_budget {
            return Err(GpuError::OutOfVideoMemory {
                requested: bytes,
                available: self.vram_budget.saturating_sub(self.vram_used),
            });
        }
        let wall = Instant::now();
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.textures[id as usize] = Some(texture);
                id
            }
            None => {
                self.textures.push(Some(texture));
                (self.textures.len() - 1) as u32
            }
        };
        self.vram_used += bytes;
        self.span_begin(SpanKind::Upload, "upload:texture");
        self.stats.bytes_uploaded += bytes as u64;
        self.stats
            .modeled
            .add(self.phase, self.profile.upload_seconds(bytes as u64));
        self.span_end();
        self.stats
            .wall
            .add(self.phase, wall.elapsed().as_secs_f64());
        Ok(TextureId(id))
    }

    /// Delete a texture, releasing its video memory.
    pub fn delete_texture(&mut self, id: TextureId) -> GpuResult<()> {
        let slot = self
            .textures
            .get_mut(id.0 as usize)
            .ok_or(GpuError::InvalidTexture(id.0))?;
        let tex = slot.take().ok_or(GpuError::InvalidTexture(id.0))?;
        self.vram_used -= tex.byte_size();
        self.free_ids.push(id.0);
        for bound in &mut self.bound_textures {
            if *bound == Some(id) {
                *bound = None;
            }
        }
        Ok(())
    }

    /// Host-side access to a texture's contents (no transfer cost; this is
    /// a debugging affordance the real hardware lacked).
    pub fn texture(&self, id: TextureId) -> GpuResult<&Texture> {
        self.textures
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(GpuError::InvalidTexture(id.0))
    }

    /// Replace a rectangular region of a texture (costed as an upload).
    pub fn update_texture_sub_image(
        &mut self,
        id: TextureId,
        x: usize,
        y: usize,
        width: usize,
        height: usize,
        data: &[f32],
    ) -> GpuResult<()> {
        let tex = self
            .textures
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(GpuError::InvalidTexture(id.0))?;
        tex.update_sub_image(x, y, width, height, data)?;
        let bytes = data.len() as u64 * 4;
        self.span_begin(SpanKind::Upload, "upload:subimage");
        self.stats.bytes_uploaded += bytes;
        self.stats
            .modeled
            .add(self.phase, self.profile.upload_seconds(bytes));
        self.span_end();
        Ok(())
    }

    /// Bind a texture to an image unit (or unbind with `None`).
    pub fn bind_texture(&mut self, unit: usize, id: Option<TextureId>) -> GpuResult<()> {
        if unit >= NUM_TEXTURE_UNITS {
            return Err(GpuError::InvalidTextureUnit(unit));
        }
        if let Some(id) = id {
            // Validate the id eagerly.
            self.texture(id)?;
        }
        self.bound_textures[unit] = id;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fragment programs & parameters
    // ------------------------------------------------------------------

    /// Bind a fragment program (or return to fixed-function with `None`).
    pub fn bind_program(&mut self, program: Option<FragmentProgram>) {
        self.record(PassOp::BindProgram {
            program: program.as_ref().map(ProgramInfo::of),
        });
        self.program = program;
    }

    /// Assemble and bind a program from source text.
    pub fn bind_program_source(&mut self, source: &str) -> GpuResult<()> {
        let program = crate::program::parser::assemble(source)?;
        self.record(PassOp::BindProgram {
            program: Some(ProgramInfo::of(&program)),
        });
        self.program = Some(program);
        Ok(())
    }

    /// The currently bound program, if any.
    pub fn bound_program(&self) -> Option<&FragmentProgram> {
        self.program.as_ref()
    }

    /// Set a `program.env[index]` parameter.
    pub fn set_program_env(&mut self, index: usize, value: [f32; 4]) -> GpuResult<()> {
        if index >= NUM_PARAMS {
            return Err(GpuError::InvalidParameterIndex(index));
        }
        self.record(PassOp::SetProgramEnv { index, value });
        self.env[index] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fixed-function state
    // ------------------------------------------------------------------

    /// Read-only view of the pipeline state.
    pub fn state(&self) -> &PipelineState {
        &self.state
    }

    /// Enable/disable the depth test and set its comparison.
    pub fn set_depth_test(&mut self, enabled: bool, func: CompareFunc) {
        self.record(PassOp::SetDepthTest { enabled, func });
        self.state.depth.test_enabled = enabled;
        self.state.depth.func = func;
    }

    /// Enable/disable depth writes.
    pub fn set_depth_write(&mut self, enabled: bool) {
        self.record(PassOp::SetDepthWrite { enabled });
        self.state.depth.write_enabled = enabled;
    }

    /// Configure the stencil test function (`glStencilFunc`).
    pub fn set_stencil_func(&mut self, enabled: bool, func: CompareFunc, reference: u8, mask: u8) {
        self.record(PassOp::SetStencilFunc {
            enabled,
            func,
            reference,
            value_mask: mask,
        });
        self.state.stencil.enabled = enabled;
        self.state.stencil.func = func;
        self.state.stencil.reference = reference;
        self.state.stencil.value_mask = mask;
    }

    /// Configure the stencil operations — the paper's
    /// `StencilOp(Op1, Op2, Op3)`.
    pub fn set_stencil_op(&mut self, fail: StencilOp, zfail: StencilOp, zpass: StencilOp) {
        self.record(PassOp::SetStencilOp { fail, zfail, zpass });
        self.state.stencil.op_fail = fail;
        self.state.stencil.op_zfail = zfail;
        self.state.stencil.op_zpass = zpass;
    }

    /// Restrict which stencil bits are writable.
    pub fn set_stencil_write_mask(&mut self, mask: u8) {
        self.record(PassOp::SetStencilWriteMask { mask });
        self.state.stencil.write_mask = mask;
    }

    /// Configure the alpha test (`glAlphaFunc`).
    pub fn set_alpha_test(&mut self, enabled: bool, func: CompareFunc, reference: f32) {
        self.record(PassOp::SetAlphaTest {
            enabled,
            func,
            reference,
        });
        self.state.alpha = AlphaState {
            enabled,
            func,
            reference,
        };
    }

    /// Configure the `EXT_depth_bounds_test` extension. Errors with
    /// [`GpuError::UnsupportedFeature`] when enabling on a hardware
    /// profile that lacks the extension (Routine 4.4's fallback is two
    /// ordinary depth-test passes); disabling is always allowed.
    pub fn set_depth_bounds(&mut self, enabled: bool, min: f64, max: f64) -> GpuResult<()> {
        if enabled && !self.profile.has_depth_bounds {
            return Err(GpuError::UnsupportedFeature("depth bounds test"));
        }
        self.record(PassOp::SetDepthBounds { enabled, min, max });
        self.state.depth_bounds = DepthBoundsState { enabled, min, max };
        Ok(())
    }

    /// Set the depth compare mask (§6.1 wishlist extension). Errors with
    /// [`GpuError::UnsupportedFeature`] unless the hardware profile
    /// advertises the capability.
    pub fn set_depth_compare_mask(&mut self, mask: u32) -> GpuResult<()> {
        if mask != crate::state::DEPTH_COMPARE_MASK_ALL && !self.profile.has_depth_compare_mask {
            return Err(GpuError::UnsupportedFeature("depth compare mask"));
        }
        self.record(PassOp::SetDepthCompareMask {
            mask: mask & crate::state::DEPTH_COMPARE_MASK_ALL,
        });
        self.state.depth.compare_mask = mask & crate::state::DEPTH_COMPARE_MASK_ALL;
        Ok(())
    }

    /// Configure the scissor rectangle.
    pub fn set_scissor(&mut self, scissor: ScissorState) {
        self.record(PassOp::SetScissor(scissor));
        self.state.scissor = scissor;
    }

    /// Set the color write mask.
    pub fn set_color_mask(&mut self, mask: ColorMask) {
        self.record(PassOp::SetColorMask(mask));
        self.state.color_mask = mask;
    }

    /// Set the flat primary color used for fixed-function quads.
    pub fn set_draw_color(&mut self, color: [f32; 4]) {
        self.record(PassOp::SetDrawColor { color });
        self.draw_color = color;
    }

    /// Reset all pipeline state to GL defaults.
    pub fn reset_state(&mut self) {
        self.record(PassOp::ResetState);
        self.state = PipelineState::default();
        self.draw_color = [1.0; 4];
    }

    // ------------------------------------------------------------------
    // Clears
    // ------------------------------------------------------------------
    //
    // Hardware of this era had fast-clear paths for depth and color, so
    // clears are modeled as (nearly) free; only the driver overhead of the
    // call is charged.

    /// Clear the color buffer.
    pub fn clear_color(&mut self, rgba: [f32; 4]) {
        self.record(PassOp::ClearColor);
        if self.record_only() {
            return;
        }
        self.fb.color.clear(rgba);
        self.stats
            .modeled
            .add(self.phase, self.profile.draw_call_overhead_s);
        self.span_instant("clear:color", "");
    }

    /// Clear the depth buffer to a normalized value.
    pub fn clear_depth(&mut self, depth: f64) {
        self.record(PassOp::ClearDepth { depth });
        if self.record_only() {
            return;
        }
        self.fb.depth.clear(depth);
        self.stats
            .modeled
            .add(self.phase, self.profile.draw_call_overhead_s);
        self.span_instant("clear:depth", "");
    }

    /// Clear the stencil buffer.
    pub fn clear_stencil(&mut self, value: u8) {
        self.record(PassOp::ClearStencil { value });
        if self.record_only() {
            return;
        }
        self.fb.stencil.clear(value);
        self.stats
            .modeled
            .add(self.phase, self.profile.draw_call_overhead_s);
        self.span_instant("clear:stencil", "");
    }

    // ------------------------------------------------------------------
    // Draw calls
    // ------------------------------------------------------------------

    /// Render a screen-aligned quad covering the whole framebuffer at the
    /// given depth — the paper's `RenderQuad(d)` / `RenderTexturedQuad`.
    pub fn draw_full_quad(&mut self, depth: f32) -> GpuResult<DrawCost> {
        let rect = Rect::full(self.fb.width(), self.fb.height());
        self.draw_quad(&[rect], depth)
    }

    /// Render screen-aligned rectangles at the given depth. The rectangles
    /// must lie within the framebuffer and not overlap (the database layer
    /// always renders disjoint rects covering each record once).
    pub fn draw_quad(&mut self, rects: &[Rect], depth: f32) -> GpuResult<DrawCost> {
        for rect in rects {
            if !rect.fits(self.fb.width(), self.fb.height()) {
                return Err(GpuError::RectOutOfBounds {
                    rect: *rect,
                    width: self.fb.width(),
                    height: self.fb.height(),
                });
            }
        }
        // Validate that every texture unit the program samples is bound.
        if let Some(program) = &self.program {
            for unit in 0..NUM_TEXTURE_UNITS {
                if program.texture_units & (1 << unit) != 0 && self.bound_textures[unit].is_none() {
                    return Err(GpuError::UnboundTextureUnit(unit));
                }
            }
        }
        if self.recorder.is_some() {
            let pass = DrawPass {
                state: self.state.clone(),
                program: self.program.as_ref().map(ProgramInfo::of),
                env0: self.env[0],
                depth,
                rects: rects.len(),
                occlusion_active: self.occlusion.is_some(),
            };
            self.record(PassOp::Draw(pass));
            if self.record_only() {
                return Ok(DrawCost::default());
            }
        }
        // Only a device reset can strike a draw submission; kind-specific
        // faults target allocation / query / readback operations.
        if self.poll_fault(FaultKind::DeviceReset).is_some() {
            return Err(GpuError::DeviceReset);
        }

        if self.span_sink.is_some() {
            let label = match &self.program {
                Some(program) => format!("pass:{}", crate::trace::program_name(&program.source)),
                None => "pass:fixed-function".to_string(),
            };
            self.span_begin(SpanKind::Pass, &label);
        }
        let wall = Instant::now();
        let texture_refs: Vec<Option<&Texture>> = self
            .bound_textures
            .iter()
            .map(|slot| slot.and_then(|id| self.textures[id.0 as usize].as_ref()))
            .collect();
        let inputs = DrawInputs {
            state: &self.state,
            program: self.program.as_ref(),
            textures: &texture_refs,
            env: &self.env,
            quad_depth: depth,
            draw_color: self.draw_color,
            early_z: self.early_z,
        };
        let cost = rasterize(&inputs, &mut self.fb, rects, &self.profile);
        cost.accumulate(&mut self.stats, self.phase);
        self.stats
            .wall
            .add(self.phase, wall.elapsed().as_secs_f64());
        if let Some(acc) = &mut self.occlusion {
            *acc += cost.passed;
        }
        self.span_end();
        Ok(cost)
    }

    // ------------------------------------------------------------------
    // Occlusion queries (NV_occlusion_query)
    // ------------------------------------------------------------------

    /// Begin counting fragments that pass all tests.
    pub fn begin_occlusion_query(&mut self) -> GpuResult<()> {
        if self.occlusion.is_some() {
            return Err(GpuError::OcclusionQueryMisuse(
                "begin with a query already active",
            ));
        }
        self.record(PassOp::BeginOcclusionQuery);
        self.occlusion = Some(0);
        self.span_instant("occlusion-begin", "");
        Ok(())
    }

    /// End the active query and synchronously fetch the pixel pass count.
    ///
    /// The synchronous fetch drains the pipeline: the cost model charges
    /// [`HardwareProfile::occlusion_sync_latency_s`] to the readback phase.
    /// Use this when the algorithm *depends* on the count before its next
    /// pass (e.g. each bit iteration of `KthLargest`).
    pub fn end_occlusion_query(&mut self) -> GpuResult<u64> {
        let count = self
            .occlusion
            .take()
            .ok_or(GpuError::OcclusionQueryMisuse("end without begin"))?;
        self.record(PassOp::EndOcclusionQuery { sync: true });
        if self.record_only() {
            return Ok(0);
        }
        self.span_begin(SpanKind::Readback, "readback:occlusion-sync");
        self.stats.occlusion_readbacks += 1;
        self.stats
            .modeled
            .add(Phase::Readback, self.profile.occlusion_sync_latency_s);
        self.span_end();
        // The drain was paid either way; the result may still be lost in
        // flight. The query is consumed, so re-running the counting pass
        // (not just re-fetching) is the correct recovery.
        match self.poll_fault(FaultKind::OcclusionLoss) {
            Some(FaultKind::DeviceReset) => Err(GpuError::DeviceReset),
            Some(_) => Err(GpuError::OcclusionQueryLost),
            None => Ok(count),
        }
    }

    /// End the active query with an *asynchronous* result fetch: no
    /// pipeline drain is charged, modeling §5.3 of the paper — "these
    /// queries can be performed asynchronously and often do not add any
    /// additional overhead". Appropriate whenever the count is a final
    /// result rather than an input to the next rendering pass.
    pub fn end_occlusion_query_async(&mut self) -> GpuResult<u64> {
        let count = self
            .occlusion
            .take()
            .ok_or(GpuError::OcclusionQueryMisuse("end without begin"))?;
        self.record(PassOp::EndOcclusionQuery { sync: false });
        if self.record_only() {
            return Ok(0);
        }
        self.stats.occlusion_readbacks += 1;
        match self.poll_fault(FaultKind::OcclusionLoss) {
            Some(FaultKind::DeviceReset) => return Err(GpuError::DeviceReset),
            Some(_) => return Err(GpuError::OcclusionQueryLost),
            None => {}
        }
        if self.has_span_sink() {
            let detail = count.to_string();
            self.span_instant("occlusion-end-async", &detail);
        }
        Ok(count)
    }

    /// Whether an occlusion query is currently active.
    pub fn occlusion_query_active(&self) -> bool {
        self.occlusion.is_some()
    }

    // ------------------------------------------------------------------
    // Read-backs
    // ------------------------------------------------------------------

    /// Read back the full depth buffer (normalized values). Costed at PCI
    /// readback bandwidth. Fails with [`GpuError::ReadbackCorrupted`] or
    /// [`GpuError::DeviceReset`] under fault injection.
    pub fn read_depth_buffer(&mut self) -> GpuResult<Vec<f64>> {
        self.record(PassOp::ReadDepthBuffer);
        if self.record_only() {
            return Ok(vec![0.0; self.fb.pixel_count()]);
        }
        let bytes = (self.fb.pixel_count() * 4) as u64;
        self.span_begin(SpanKind::Readback, "readback:depth");
        self.account_readback(bytes);
        self.span_end();
        self.check_readback("depth", bytes)?;
        Ok((0..self.fb.pixel_count())
            .map(|i| self.fb.depth.get(i))
            .collect())
    }

    /// Read back the raw 24-bit depth buffer values.
    pub fn read_depth_buffer_raw(&mut self) -> GpuResult<Vec<u32>> {
        self.record(PassOp::ReadDepthBuffer);
        if self.record_only() {
            return Ok(vec![0; self.fb.pixel_count()]);
        }
        let bytes = (self.fb.pixel_count() * 4) as u64;
        self.span_begin(SpanKind::Readback, "readback:depth");
        self.account_readback(bytes);
        self.span_end();
        self.check_readback("depth", bytes)?;
        Ok(self.fb.depth.raw_data().to_vec())
    }

    /// Read back the stencil buffer.
    pub fn read_stencil_buffer(&mut self) -> GpuResult<Vec<u8>> {
        self.record(PassOp::ReadStencilBuffer);
        if self.record_only() {
            return Ok(vec![0; self.fb.pixel_count()]);
        }
        let bytes = self.fb.pixel_count() as u64;
        self.span_begin(SpanKind::Readback, "readback:stencil");
        self.account_readback(bytes);
        self.span_end();
        self.check_readback("stencil", bytes)?;
        Ok(self.fb.stencil.data().to_vec())
    }

    /// Read back the color buffer.
    pub fn read_color_buffer(&mut self) -> GpuResult<Vec<[f32; 4]>> {
        self.record(PassOp::ReadColorBuffer);
        if self.record_only() {
            return Ok(vec![[0.0; 4]; self.fb.pixel_count()]);
        }
        let bytes = (self.fb.pixel_count() * 16) as u64;
        self.span_begin(SpanKind::Readback, "readback:color");
        self.account_readback(bytes);
        self.span_end();
        self.check_readback("color", bytes)?;
        Ok(self.fb.color.data().to_vec())
    }

    /// Integrity check at the driver boundary after a readback's cost has
    /// been charged: corruption is *detected* (parity/CRC), never returned
    /// silently — the caller gets a typed transient error and no data.
    fn check_readback(&mut self, buffer: &'static str, bytes: u64) -> GpuResult<()> {
        match self.poll_fault(FaultKind::ReadbackBitFlip) {
            Some(FaultKind::DeviceReset) => Err(GpuError::DeviceReset),
            Some(_) => Err(GpuError::ReadbackCorrupted {
                buffer,
                bytes: bytes as usize,
            }),
            None => Ok(()),
        }
    }

    /// Copy a region of the color buffer into a texture — the
    /// `glCopyTexSubImage2D` path multipass algorithms (e.g. bitonic sort)
    /// use to feed one pass's output to the next. The copy stays on-card,
    /// so it is costed at fill rate rather than bus bandwidth.
    ///
    /// For an R-format texture the red channel is taken; RG/RGB/RGBA take
    /// the leading channels.
    pub fn copy_color_to_texture(
        &mut self,
        id: TextureId,
        x: usize,
        y: usize,
        width: usize,
        height: usize,
    ) -> GpuResult<()> {
        if x + width > self.fb.width() || y + height > self.fb.height() {
            return Err(GpuError::RectOutOfBounds {
                rect: Rect::new(x, y, width, height),
                width: self.fb.width(),
                height: self.fb.height(),
            });
        }
        let fb_width = self.fb.width();
        {
            let tex = self
                .textures
                .get(id.0 as usize)
                .and_then(Option::as_ref)
                .ok_or(GpuError::InvalidTexture(id.0))?;
            if width > tex.width() || height > tex.height() {
                return Err(GpuError::InvalidTextureSize { width, height });
            }
        }
        self.record(PassOp::CopyColorToTexture);
        if self.record_only() {
            return Ok(());
        }
        let tex = self
            .textures
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(GpuError::InvalidTexture(id.0))?;
        let channels = tex.format().channels();
        let tex_width = tex.width();
        let data = tex.data_mut();
        for row in 0..height {
            for col in 0..width {
                let pixel = self.fb.color.get((y + row) * fb_width + (x + col));
                let base = (row * tex_width + col) * channels;
                data[base..base + channels].copy_from_slice(&pixel[..channels]);
            }
        }
        let fragments = (width * height) as u64;
        self.span_begin(SpanKind::Pass, "copy:color-to-texture");
        self.stats
            .modeled
            .add(self.phase, self.profile.raster_seconds(fragments, 0, 0));
        self.span_end();
        Ok(())
    }

    fn account_readback(&mut self, bytes: u64) {
        self.stats.bytes_read_back += bytes;
        self.stats
            .modeled
            .add(Phase::Readback, self.profile.readback_seconds(bytes));
    }

    /// Direct framebuffer access for in-crate helpers and white-box tests.
    #[allow(dead_code)]
    pub(crate) fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Add modeled seconds to a phase, for in-crate helpers that model
    /// composite operations (e.g. the mipmap pyramid).
    pub(crate) fn add_modeled(&mut self, phase: Phase, seconds: f64) {
        self.stats.modeled.add(phase, seconds);
        self.stats.draw_calls += 1;
    }

    /// Charge a retry backoff to the modeled clock ([`Phase::Other`]).
    ///
    /// The resilience layer sleeps on the *modeled* clock, never wall
    /// clock, so chaos runs stay deterministic; advancing the clock also
    /// lets a backoff carry the schedule past a burst of pending faults.
    /// No draw call is counted — nothing was submitted.
    pub fn charge_backoff(&mut self, seconds: f64) {
        self.stats.modeled.add(Phase::Other, seconds.max(0.0));
        if self.span_sink.is_some() {
            self.span_instant("resilience:backoff", "");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::TextureFormat;

    fn tex(values: &[f32]) -> Texture {
        Texture::from_data(values.len(), 1, TextureFormat::R, values.to_vec()).unwrap()
    }

    #[test]
    fn texture_lifecycle_and_vram_accounting() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        let base = gpu.vram_used();
        let id = gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        assert_eq!(gpu.vram_used(), base + 16);
        assert_eq!(gpu.texture(id).unwrap().fetch_channel(2, 0, 0), 3.0);
        gpu.delete_texture(id).unwrap();
        assert_eq!(gpu.vram_used(), base);
        assert!(gpu.texture(id).is_err());
        assert!(gpu.delete_texture(id).is_err());
    }

    #[test]
    fn texture_ids_are_recycled() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let a = gpu.create_texture(tex(&[1.0])).unwrap();
        gpu.delete_texture(a).unwrap();
        let b = gpu.create_texture(tex(&[2.0])).unwrap();
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn vram_budget_enforced() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        gpu.set_vram_budget(gpu.vram_used() + 15);
        let err = gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap_err();
        assert!(matches!(err, GpuError::OutOfVideoMemory { .. }));
        // A smaller texture still fits.
        assert!(gpu.create_texture(tex(&[1.0])).is_ok());
    }

    #[test]
    fn deleting_bound_texture_unbinds_it() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let id = gpu.create_texture(tex(&[1.0])).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.delete_texture(id).unwrap();
        // Drawing with a program that samples unit 0 now fails.
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D; MOV result.color, R0;",
        )
        .unwrap();
        let err = gpu.draw_full_quad(0.5).unwrap_err();
        assert_eq!(err, GpuError::UnboundTextureUnit(0));
    }

    #[test]
    fn draw_rejects_out_of_bounds_rect() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        let err = gpu.draw_quad(&[Rect::new(0, 0, 5, 1)], 0.5).unwrap_err();
        assert!(matches!(err, GpuError::RectOutOfBounds { .. }));
    }

    #[test]
    fn fixed_function_quad_writes_depth_everywhere() {
        let mut gpu = Gpu::geforce_fx_5900(8, 4);
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        let cost = gpu.draw_full_quad(0.5).unwrap();
        assert_eq!(cost.fragments, 32);
        assert_eq!(cost.passed, 32);
        assert_eq!(cost.shaded, 0);
        let depths = gpu.read_depth_buffer().unwrap();
        assert!(depths.iter().all(|&d| (d - 0.5).abs() < 1e-6));
    }

    #[test]
    fn occlusion_query_counts_passing_fragments() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        // Stored depth defaults to 1.0; incoming 0.5 with Less always passes.
        gpu.set_depth_test(true, CompareFunc::Less);
        gpu.set_depth_write(false);
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_quad(&[Rect::new(0, 0, 4, 2)], 0.5).unwrap();
        gpu.draw_quad(&[Rect::new(0, 2, 4, 1)], 0.5).unwrap();
        let count = gpu.end_occlusion_query().unwrap();
        assert_eq!(count, 12);
        assert_eq!(gpu.stats().occlusion_readbacks, 1);
    }

    #[test]
    fn occlusion_query_misuse_detected() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        assert!(gpu.end_occlusion_query().is_err());
        gpu.begin_occlusion_query().unwrap();
        assert!(gpu.begin_occlusion_query().is_err());
        assert!(gpu.occlusion_query_active());
        gpu.end_occlusion_query().unwrap();
        assert!(!gpu.occlusion_query_active());
    }

    #[test]
    fn program_draw_copies_texture_to_depth() {
        // The paper's CopyToDepth: fetch texel, normalize, write depth.
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        let max = crate::buffers::DEPTH_MAX as f32;
        let scale = 1.0 / crate::buffers::DEPTH_SCALE as f32;
        let id = gpu.create_texture(tex(&[0.0, 100.0, 200.0, max])).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             MUL R1.x, R0.x, program.env[0].x;
             MOV result.depth, R1.x;",
        )
        .unwrap();
        gpu.set_program_env(0, [scale, 0.0, 0.0, 0.0]).unwrap();
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        let cost = gpu.draw_full_quad(0.0).unwrap();
        assert_eq!(cost.shaded, 4, "depth-writing program disables early-z");
        let raw = gpu.read_depth_buffer_raw().unwrap();
        assert_eq!(raw, vec![0, 100, 200, crate::buffers::DEPTH_MAX]);
    }

    #[test]
    fn early_z_skips_shading_of_rejected_fragments() {
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        let id = gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        // Pre-load depth: two pixels near, two far.
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        gpu.draw_quad(&[Rect::new(0, 0, 2, 1)], 0.1).unwrap();
        gpu.draw_quad(&[Rect::new(2, 0, 2, 1)], 0.9).unwrap();
        // Now draw a shaded quad at 0.5 with Less: only the two far pixels pass.
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D; MOV result.color, R0;",
        )
        .unwrap();
        gpu.set_depth_test(true, CompareFunc::Less);
        gpu.set_depth_write(false);
        let cost = gpu.draw_full_quad(0.5).unwrap();
        assert_eq!(cost.passed, 2);
        assert_eq!(cost.shaded, 2, "early-z shades only passing fragments");
        assert_eq!(cost.early_rejected, 2);

        // With early-z disabled, all four fragments are shaded.
        gpu.set_early_z(false);
        let cost = gpu.draw_full_quad(0.5).unwrap();
        assert_eq!(cost.passed, 2);
        assert_eq!(cost.shaded, 4);
        assert_eq!(cost.early_rejected, 0);
    }

    #[test]
    fn kil_program_discards_fragments() {
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        let id = gpu.create_texture(tex(&[-1.0, 1.0, -2.0, 2.0])).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             KIL R0.x;
             MOV result.color, R0;",
        )
        .unwrap();
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_full_quad(0.5).unwrap();
        let count = gpu.end_occlusion_query().unwrap();
        assert_eq!(count, 2, "negative texels killed");
    }

    #[test]
    fn scissor_restricts_fragments() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        gpu.set_scissor(ScissorState {
            enabled: true,
            x: 1,
            y: 1,
            width: 2,
            height: 2,
        });
        let cost = gpu.draw_full_quad(0.5).unwrap();
        assert_eq!(cost.fragments, 4);
    }

    #[test]
    fn stats_phases_attributed() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        gpu.set_phase(Phase::Upload);
        gpu.create_texture(tex(&[1.0])).unwrap();
        gpu.set_phase(Phase::Compute);
        gpu.draw_full_quad(0.5).unwrap();
        let stats = gpu.stats();
        assert!(stats.modeled.get(Phase::Upload) > 0.0);
        assert!(stats.modeled.get(Phase::Compute) > 0.0);
        assert_eq!(stats.modeled.get(Phase::CopyToDepth), 0.0);
        assert_eq!(stats.draw_calls, 1);
        assert_eq!(stats.bytes_uploaded, 4);
    }

    #[test]
    fn env_parameter_validation() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        assert!(gpu.set_program_env(0, [1.0; 4]).is_ok());
        assert!(gpu.set_program_env(NUM_PARAMS, [1.0; 4]).is_err());
        assert!(gpu.bind_texture(NUM_TEXTURE_UNITS, None).is_err());
    }

    #[test]
    fn clears_reset_buffers() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.draw_full_quad(0.3).unwrap();
        gpu.clear_depth(1.0);
        gpu.clear_color([0.5; 4]);
        gpu.clear_stencil(7);
        assert!(gpu
            .read_depth_buffer_raw()
            .unwrap()
            .iter()
            .all(|&d| d == crate::buffers::DEPTH_MAX));
        assert!(gpu
            .read_color_buffer()
            .unwrap()
            .iter()
            .all(|&c| c == [0.5; 4]));
        assert!(gpu.read_stencil_buffer().unwrap().iter().all(|&s| s == 7));
    }

    #[test]
    fn copy_color_to_texture_roundtrip() {
        let mut gpu = Gpu::geforce_fx_5900(4, 2);
        gpu.set_draw_color([0.25, 0.5, 0.75, 1.0]);
        gpu.draw_full_quad(0.0).unwrap();
        let tex = Texture::zeroed(4, 2, TextureFormat::R).unwrap();
        let id = gpu.create_texture(tex).unwrap();
        gpu.copy_color_to_texture(id, 0, 0, 4, 2).unwrap();
        // R format takes the red channel.
        assert!(gpu.texture(id).unwrap().data().iter().all(|&v| v == 0.25));
        // RGBA format takes all channels.
        let tex4 = Texture::zeroed(4, 2, TextureFormat::Rgba).unwrap();
        let id4 = gpu.create_texture(tex4).unwrap();
        gpu.copy_color_to_texture(id4, 0, 0, 4, 2).unwrap();
        assert_eq!(
            gpu.texture(id4).unwrap().fetch(3, 1),
            [0.25, 0.5, 0.75, 1.0]
        );
    }

    #[test]
    fn copy_color_to_texture_validates_bounds() {
        let mut gpu = Gpu::geforce_fx_5900(4, 2);
        let id = gpu
            .create_texture(Texture::zeroed(2, 2, TextureFormat::R).unwrap())
            .unwrap();
        // Region larger than the texture.
        assert!(gpu.copy_color_to_texture(id, 0, 0, 4, 2).is_err());
        // Region outside the framebuffer.
        assert!(gpu.copy_color_to_texture(id, 3, 1, 2, 2).is_err());
        // Bad id.
        assert!(gpu
            .copy_color_to_texture(TextureId(99), 0, 0, 1, 1)
            .is_err());
    }

    #[test]
    fn depth_compare_mask_gated_by_profile() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        assert_eq!(
            gpu.set_depth_compare_mask(0b100).unwrap_err(),
            GpuError::UnsupportedFeature("depth compare mask")
        );
        // Setting the all-ones mask is always allowed (it is the default).
        assert!(gpu
            .set_depth_compare_mask(crate::state::DEPTH_COMPARE_MASK_ALL)
            .is_ok());

        let mut gpu = Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 4, 1);
        gpu.set_depth_compare_mask(0b100).unwrap();
        assert_eq!(gpu.state().depth.compare_mask, 0b100);
    }

    #[test]
    fn depth_compare_mask_tests_single_bits() {
        // §6.1's wished-for behavior: with mask = 2^i and func Equal, the
        // test passes exactly when bit i of the stored value matches bit i
        // of the incoming depth.
        let mut gpu = Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 8, 1);
        let scale = 1.0 / crate::buffers::DEPTH_SCALE as f32;
        let values: Vec<f32> = (0..8).map(|v| v as f32).collect();
        let id = gpu
            .create_texture(Texture::from_data(8, 1, TextureFormat::R, values).unwrap())
            .unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             MUL R1.x, R0.x, program.env[0].x;
             MOV result.depth, R1.x;",
        )
        .unwrap();
        gpu.set_program_env(0, [scale, 0.0, 0.0, 0.0]).unwrap();
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        gpu.draw_full_quad(0.0).unwrap();
        gpu.bind_program(None);
        gpu.set_depth_write(false);

        for bit in 0..3u32 {
            gpu.set_depth_compare_mask(1 << bit).unwrap();
            gpu.set_depth_test(true, CompareFunc::Equal);
            gpu.begin_occlusion_query().unwrap();
            // Incoming depth encodes 2^bit: test passes when bit set.
            gpu.draw_full_quad((1u32 << bit) as f32 * scale).unwrap();
            let count = gpu.end_occlusion_query().unwrap();
            let expected = (0..8u32).filter(|v| v >> bit & 1 == 1).count() as u64;
            assert_eq!(count, expected, "bit {bit}");
        }
    }

    /// Records every sink callback for white-box assertions.
    #[derive(Default)]
    struct RecordingSink {
        events: Vec<String>,
        clocks: Vec<u64>,
    }

    impl crate::span::SpanSink for RecordingSink {
        fn begin_span(
            &mut self,
            kind: crate::span::SpanKind,
            name: &str,
            clock_ns: u64,
            _counters: &crate::stats::WorkCounters,
        ) {
            self.events.push(format!("begin {} {name}", kind.name()));
            self.clocks.push(clock_ns);
        }

        fn end_span(&mut self, clock_ns: u64, _counters: &crate::stats::WorkCounters) {
            self.events.push("end".to_string());
            self.clocks.push(clock_ns);
        }

        fn instant(&mut self, name: &str, detail: &str, clock_ns: u64) {
            self.events.push(format!("instant {name} {detail}"));
            self.clocks.push(clock_ns);
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    #[test]
    fn span_sink_sees_leaf_spans_on_the_modeled_clock() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        gpu.attach_span_sink(Box::new(RecordingSink::default()));
        assert!(gpu.has_span_sink());

        gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        gpu.set_depth_test(true, CompareFunc::Less);
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_full_quad(0.5).unwrap();
        gpu.end_occlusion_query().unwrap();
        gpu.read_stencil_buffer().unwrap();

        let sink = gpu
            .take_span_sink()
            .unwrap()
            .into_any()
            .downcast::<RecordingSink>()
            .unwrap();
        assert_eq!(
            sink.events,
            vec![
                "begin upload upload:texture",
                "end",
                "instant occlusion-begin ",
                "begin pass pass:fixed-function",
                "end",
                "begin readback readback:occlusion-sync",
                "end",
                "begin readback readback:stencil",
                "end",
            ]
        );
        // Timestamps are the modeled clock: non-decreasing, and each
        // begin/end pair brackets a cost charge (end > begin).
        assert!(sink.clocks.windows(2).all(|w| w[0] <= w[1]));
        assert!(sink.clocks[1] > sink.clocks[0], "upload charged");
        assert_eq!(
            *sink.clocks.last().unwrap(),
            gpu.modeled_clock_ns(),
            "final end matches the device clock"
        );
    }

    #[test]
    fn span_sink_is_cost_transparent() {
        let run = |traced: bool| {
            let mut gpu = Gpu::geforce_fx_5900(4, 4);
            if traced {
                gpu.attach_span_sink(Box::new(RecordingSink::default()));
            }
            gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap();
            gpu.set_depth_test(true, CompareFunc::Less);
            gpu.begin_occlusion_query().unwrap();
            gpu.draw_full_quad(0.5).unwrap();
            let count = gpu.end_occlusion_query().unwrap();
            (count, gpu.stats().counters(), gpu.modeled_clock_ns())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn depth_bounds_gated_by_profile() {
        let mut gpu = Gpu::new(HardwareProfile::geforce_fx_5900_no_depth_bounds(), 2, 2);
        assert_eq!(
            gpu.set_depth_bounds(true, 0.1, 0.9).unwrap_err(),
            GpuError::UnsupportedFeature("depth bounds test")
        );
        // Disabling is always allowed.
        gpu.set_depth_bounds(false, 0.0, 1.0).unwrap();
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        gpu.set_depth_bounds(true, 0.1, 0.9).unwrap();
        assert!(gpu.state().depth_bounds.enabled);
    }

    #[test]
    fn injected_occlusion_loss_consumes_query_and_is_transient() {
        use crate::fault::{FaultEvent, FaultInjector, FaultKind};
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::OcclusionLoss,
        }]));
        gpu.set_depth_test(true, CompareFunc::Less);
        gpu.set_depth_write(false);
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_full_quad(0.5).unwrap();
        let err = gpu.end_occlusion_query().unwrap_err();
        assert_eq!(err, GpuError::OcclusionQueryLost);
        assert_eq!(err.fault_class(), crate::error::FaultClass::Transient);
        // The query is consumed: retrying the whole counting pass works.
        assert!(!gpu.occlusion_query_active());
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_full_quad(0.5).unwrap();
        assert_eq!(gpu.end_occlusion_query().unwrap(), 4);
        assert_eq!(gpu.fault_stats().occlusion_losses, 1);
    }

    #[test]
    fn injected_readback_corruption_charges_cost_and_returns_no_data() {
        use crate::fault::{FaultEvent, FaultInjector, FaultKind};
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::ReadbackBitFlip,
        }]));
        let err = gpu.read_stencil_buffer().unwrap_err();
        assert!(matches!(
            err,
            GpuError::ReadbackCorrupted {
                buffer: "stencil",
                ..
            }
        ));
        assert!(gpu.stats().bytes_read_back > 0, "transfer cost was paid");
        // The event is consumed: the retry succeeds.
        assert_eq!(gpu.read_stencil_buffer().unwrap(), vec![0; 4]);
    }

    #[test]
    fn injected_allocation_failure_reports_out_of_memory() {
        use crate::fault::{FaultEvent, FaultInjector, FaultKind};
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::AllocationFail,
        }]));
        let err = gpu.create_texture(tex(&[1.0])).unwrap_err();
        assert!(matches!(err, GpuError::OutOfVideoMemory { .. }));
        assert_eq!(err.fault_class(), crate::error::FaultClass::Resource);
        // Consumed: the retry allocates.
        assert!(gpu.create_texture(tex(&[1.0])).is_ok());
    }

    #[test]
    fn device_reset_wipes_context_but_preserves_the_modeled_clock() {
        use crate::fault::{FaultEvent, FaultInjector, FaultKind};
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        let id = gpu.create_texture(tex(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        gpu.draw_full_quad(0.25).unwrap();
        let clock_before = gpu.modeled_clock_ns();
        let vram_floor = gpu.framebuffer().byte_size();
        assert!(clock_before > 0);

        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::DeviceReset,
        }]));
        let err = gpu.read_depth_buffer().unwrap_err();
        assert_eq!(err, GpuError::DeviceReset);
        assert_eq!(err.fault_class(), crate::error::FaultClass::Device);

        // Context gone: texture invalid, state back to defaults, VRAM at
        // the framebuffer floor, framebuffer cleared.
        assert!(gpu.texture(id).is_err());
        assert_eq!(gpu.vram_used(), vram_floor);
        assert!(!gpu.state().depth.test_enabled);
        assert!(gpu
            .read_depth_buffer_raw()
            .unwrap()
            .iter()
            .all(|&d| d == crate::buffers::DEPTH_MAX));
        // The modeled clock survives (monotonic across the reset: the
        // failed readback itself charged its transfer before the fault).
        assert!(gpu.modeled_clock_ns() >= clock_before);
        assert_eq!(gpu.fault_stats().device_resets, 1);
    }

    #[test]
    fn faults_do_not_fire_during_record_only_dry_runs() {
        use crate::fault::{FaultEvent, FaultInjector, FaultKind};
        let mut gpu = Gpu::geforce_fx_5900(4, 1);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::ReadbackBitFlip,
        }]));
        gpu.enable_tracing(RecordMode::RecordOnly);
        assert!(gpu.read_stencil_buffer().is_ok(), "dry run never faults");
        gpu.disable_tracing();
        // The event is still pending and strikes the real readback.
        assert!(gpu.read_stencil_buffer().is_err());
    }

    #[test]
    fn charge_backoff_advances_clock_without_draw_calls() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let calls = gpu.stats().draw_calls;
        gpu.charge_backoff(1e-3);
        assert_eq!(gpu.modeled_clock_ns(), 1_000_000);
        assert_eq!(gpu.stats().draw_calls, calls);
        assert_eq!(gpu.stats().modeled.get(Phase::Other), 1e-3);
    }

    #[test]
    fn readbacks_are_costed() {
        let mut gpu = Gpu::geforce_fx_5900(10, 10);
        gpu.read_depth_buffer().unwrap();
        let stats = gpu.stats();
        assert_eq!(stats.bytes_read_back, 400);
        assert!(stats.modeled.get(Phase::Readback) > 0.0);
    }
}
