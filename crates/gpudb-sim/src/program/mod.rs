//! Programmable fragment processing: instruction set, assembler,
//! interpreter, and the paper's builtin programs.

pub mod builtin;
pub mod interp;
pub mod isa;
pub mod parser;

pub use interp::{execute, FragmentContext, FragmentInput, ProgramOutput};
pub use isa::{FragmentProgram, Instruction, Opcode};
pub use parser::assemble;
