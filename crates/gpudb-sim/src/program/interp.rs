//! Fragment program interpreter.
//!
//! Executes one [`FragmentProgram`] per fragment, exactly as the pixel
//! processing engines of the simulated GPU would — including the NV3x
//! quirk the paper leans on in §6.1: "Current GPUs implement branching by
//! evaluating both portions of the conditional statement", i.e. there is no
//! control flow at all, only straight-line execution, `CMP` selects, and
//! `KIL`.

use super::isa::{
    DstReg, FragmentProgram, Instruction, Opcode, SrcOperand, SrcReg, NUM_TEMPS, NUM_TEXCOORDS,
};
use crate::texture::Texture;

/// Interpolated per-fragment inputs.
#[derive(Debug, Clone, Copy)]
pub struct FragmentInput {
    /// Window-space position `(x + 0.5, y + 0.5, depth, 1)`.
    pub position: [f32; 4],
    /// Texture coordinate sets. For the screen-aligned quads the database
    /// algorithms render, set 0 carries texel-space coordinates so that
    /// texels line up 1:1 with pixels (§3.3).
    pub texcoord: [[f32; 4]; NUM_TEXCOORDS],
    /// Interpolated primary color.
    pub color: [f32; 4],
}

impl FragmentInput {
    /// Input for a screen-aligned-quad fragment at pixel `(x, y)` with the
    /// given interpolated depth and flat color.
    pub fn for_pixel(x: usize, y: usize, depth: f32, color: [f32; 4]) -> FragmentInput {
        let px = x as f32 + 0.5;
        let py = y as f32 + 0.5;
        FragmentInput {
            position: [px, py, depth, 1.0],
            texcoord: [[px, py, 0.0, 1.0]; NUM_TEXCOORDS],
            color,
        }
    }
}

/// Resources visible to a program execution.
pub struct FragmentContext<'a> {
    /// Textures bound to the image units.
    pub textures: &'a [Option<&'a Texture>],
    /// `program.env[...]` parameter values.
    pub env: &'a [[f32; 4]],
}

/// Result of executing a fragment program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOutput {
    /// The fragment's output color (defaults to the interpolated color when
    /// the program never writes `result.color`).
    pub color: [f32; 4],
    /// Replacement depth, if the program wrote `result.depth`.
    pub depth: Option<f32>,
    /// Whether a `KIL` discarded the fragment. When set, the other fields
    /// must be ignored.
    pub killed: bool,
}

/// Sample a texture with nearest-neighbor filtering and clamp-to-edge
/// addressing, in texel coordinates.
#[inline(always)]
fn sample(texture: &Texture, coord: [f32; 4]) -> [f32; 4] {
    let x = (coord[0].floor().max(0.0) as usize).min(texture.width() - 1);
    let y = (coord[1].floor().max(0.0) as usize).min(texture.height() - 1);
    texture.fetch(x, y)
}

/// Execute `program` for a single fragment.
///
/// Panics are impossible for programs produced by the assembler (which
/// validates register indices); out-of-range indices in hand-built programs
/// are a logic error.
pub fn execute(
    program: &FragmentProgram,
    input: &FragmentInput,
    ctx: &FragmentContext<'_>,
) -> ProgramOutput {
    let mut temps = [[0.0f32; 4]; NUM_TEMPS];
    let mut out = ProgramOutput {
        color: input.color,
        depth: None,
        killed: false,
    };

    let read = |temps: &[[f32; 4]; NUM_TEMPS], src: &SrcOperand| -> [f32; 4] {
        let raw = match src.reg {
            SrcReg::Temp(i) => temps[i],
            SrcReg::Param(i) => ctx.env[i],
            SrcReg::Literal(i) => program.literals[i],
            SrcReg::TexCoord(i) => input.texcoord[i],
            SrcReg::Position => input.position,
            SrcReg::FragColor => input.color,
        };
        let mut v = src.swizzle.apply(raw);
        if src.negate {
            for c in &mut v {
                *c = -*c;
            }
        }
        v
    };

    for inst in &program.instructions {
        match inst {
            Instruction::Kil { src } => {
                let v = read(&temps, src);
                if v.iter().any(|&c| c < 0.0) {
                    out.killed = true;
                    return out;
                }
            }
            Instruction::Tex { dst, coord, unit } => {
                let c = read(&temps, coord);
                let texel = match ctx.textures.get(*unit).copied().flatten() {
                    Some(t) => sample(t, c),
                    // Sampling an unbound unit returns opaque black, as GL.
                    None => [0.0, 0.0, 0.0, 1.0],
                };
                write_dst(&mut temps, &mut out, dst, texel);
            }
            Instruction::Alu { op, dst, srcs } => {
                let a = srcs[0].as_ref().map(|s| read(&temps, s));
                let b = srcs[1].as_ref().map(|s| read(&temps, s));
                let c = srcs[2].as_ref().map(|s| read(&temps, s));
                let value = eval_alu(*op, a, b, c);
                write_dst(&mut temps, &mut out, dst, value);
            }
        }
    }
    out
}

#[inline(always)]
fn eval_alu(op: Opcode, a: Option<[f32; 4]>, b: Option<[f32; 4]>, c: Option<[f32; 4]>) -> [f32; 4] {
    let a = a.unwrap_or([0.0; 4]);
    match op {
        Opcode::Mov => a,
        Opcode::Add => zip(a, b, |x, y| x + y),
        Opcode::Sub => zip(a, b, |x, y| x - y),
        Opcode::Mul => zip(a, b, |x, y| x * y),
        Opcode::Mad => {
            let b = b.unwrap_or([0.0; 4]);
            let c = c.unwrap_or([0.0; 4]);
            [
                a[0] * b[0] + c[0],
                a[1] * b[1] + c[1],
                a[2] * b[2] + c[2],
                a[3] * b[3] + c[3],
            ]
        }
        Opcode::Dp3 => {
            let b = b.unwrap_or([0.0; 4]);
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
            [d; 4]
        }
        Opcode::Dp4 => {
            let b = b.unwrap_or([0.0; 4]);
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
            [d; 4]
        }
        Opcode::Frc => a.map(|x| x - x.floor()),
        Opcode::Flr => a.map(f32::floor),
        Opcode::Rcp => [1.0 / a[0]; 4],
        Opcode::Rsq => [1.0 / a[0].abs().sqrt(); 4],
        Opcode::Min => zip(a, b, f32::min),
        Opcode::Max => zip(a, b, f32::max),
        Opcode::Cmp => {
            let b = b.unwrap_or([0.0; 4]);
            let c = c.unwrap_or([0.0; 4]);
            [
                if a[0] < 0.0 { b[0] } else { c[0] },
                if a[1] < 0.0 { b[1] } else { c[1] },
                if a[2] < 0.0 { b[2] } else { c[2] },
                if a[3] < 0.0 { b[3] } else { c[3] },
            ]
        }
        Opcode::Slt => zip(a, b, |x, y| if x < y { 1.0 } else { 0.0 }),
        Opcode::Sge => zip(a, b, |x, y| if x >= y { 1.0 } else { 0.0 }),
        Opcode::Abs => a.map(f32::abs),
        Opcode::Ex2 => [a[0].exp2(); 4],
        Opcode::Lg2 => [a[0].abs().log2(); 4],
        Opcode::Pow => {
            let b = b.unwrap_or([0.0; 4]);
            [a[0].powf(b[0]); 4]
        }
        // Handled by the caller.
        Opcode::Tex | Opcode::Kil => unreachable!("non-ALU opcode in eval_alu"),
    }
}

#[inline(always)]
fn zip(a: [f32; 4], b: Option<[f32; 4]>, f: impl Fn(f32, f32) -> f32) -> [f32; 4] {
    let b = b.unwrap_or([0.0; 4]);
    [f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])]
}

#[inline(always)]
fn write_dst(
    temps: &mut [[f32; 4]; NUM_TEMPS],
    out: &mut ProgramOutput,
    dst: &super::isa::DstOperand,
    value: [f32; 4],
) {
    match dst.reg {
        DstReg::Temp(i) => {
            for (c, v) in value.iter().enumerate() {
                if dst.mask.writes(c) {
                    temps[i][c] = *v;
                }
            }
        }
        DstReg::ResultColor => {
            for (c, v) in value.iter().enumerate() {
                if dst.mask.writes(c) {
                    out.color[c] = *v;
                }
            }
        }
        DstReg::ResultDepth => {
            // ARB_fragment_program exposes depth as the z channel of the
            // result; combined with broadcast swizzles (`MOV result.depth,
            // R0.x`) this yields the intended scalar.
            out.depth = Some(value[2]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parser::assemble;
    use crate::texture::{Texture, TextureFormat};

    fn run(src: &str, input: FragmentInput, textures: &[Option<&Texture>]) -> ProgramOutput {
        let prog = assemble(src).unwrap();
        let env = [[0.0f32; 4]; 32];
        let ctx = FragmentContext {
            textures,
            env: &env,
        };
        execute(&prog, &input, &ctx)
    }

    fn run_env(
        src: &str,
        input: FragmentInput,
        textures: &[Option<&Texture>],
        env: &[[f32; 4]],
    ) -> ProgramOutput {
        let prog = assemble(src).unwrap();
        let ctx = FragmentContext { textures, env };
        execute(&prog, &input, &ctx)
    }

    fn default_input() -> FragmentInput {
        FragmentInput::for_pixel(0, 0, 0.5, [0.0, 0.0, 0.0, 1.0])
    }

    #[test]
    fn mov_literal_to_color() {
        let out = run(
            "MOV result.color, {0.25, 0.5, 0.75, 1.0};",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [0.25, 0.5, 0.75, 1.0]);
        assert!(!out.killed);
        assert_eq!(out.depth, None);
    }

    #[test]
    fn arithmetic_chain() {
        // (2 * 3) + 4 = 10 via MAD
        let out = run(
            "MAD R0, {2.0}, {3.0}, {4.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [10.0; 4]);
    }

    #[test]
    fn dp4_broadcasts() {
        let out = run(
            "DP4 R0, {1.0, 2.0, 3.0, 4.0}, {4.0, 3.0, 2.0, 1.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [20.0; 4]);
    }

    #[test]
    fn dp3_ignores_w() {
        let out = run(
            "DP3 R0, {1.0, 2.0, 3.0, 100.0}, {1.0, 1.0, 1.0, 100.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [6.0; 4]);
    }

    #[test]
    fn frc_extracts_fraction() {
        let out = run(
            "FRC R0, {1.75, -0.25, 3.0, 0.5}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [0.75, 0.75, 0.0, 0.5]);
    }

    #[test]
    fn cmp_selects_on_sign() {
        let out = run(
            "CMP R0, {-1.0, 0.0, 1.0, -0.5}, {10.0}, {20.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [10.0, 20.0, 20.0, 10.0]);
    }

    #[test]
    fn slt_sge() {
        let out = run(
            "SLT R0, {1.0, 2.0, 2.0, 3.0}, {2.0}; SGE R1, {1.0, 2.0, 2.0, 3.0}, {2.0}; ADD R2, R0, R1; MOV result.color, R2;",
            default_input(),
            &[],
        );
        // SLT + SGE partition: always exactly 1.
        assert_eq!(out.color, [1.0; 4]);
    }

    #[test]
    fn scalar_ops_broadcast() {
        let out = run(
            "RCP R0, {4.0, 9.0, 9.0, 9.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [0.25; 4]);
        let out = run("RSQ R0, {4.0}; MOV result.color, R0;", default_input(), &[]);
        assert_eq!(out.color, [0.5; 4]);
        let out = run("EX2 R0, {3.0}; MOV result.color, R0;", default_input(), &[]);
        assert_eq!(out.color, [8.0; 4]);
        let out = run("LG2 R0, {8.0}; MOV result.color, R0;", default_input(), &[]);
        assert_eq!(out.color, [3.0; 4]);
        let out = run(
            "POW R0, {2.0}, {10.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [1024.0; 4]);
    }

    #[test]
    fn min_max_abs_flr() {
        let out = run(
            "MIN R0, {1.0, 5.0, 3.0, 3.0}, {2.0}; MAX R1, R0, {1.5}; ABS R2, -R1; FLR R3, {1.9}; ADD R0, R2, R3; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [1.5 + 1.0, 2.0 + 1.0, 2.0 + 1.0, 2.0 + 1.0]);
    }

    #[test]
    fn kil_on_negative_component() {
        let out = run(
            "KIL {1.0, 1.0, -0.001, 1.0}; MOV result.color, {1.0};",
            default_input(),
            &[],
        );
        assert!(out.killed);
        let out = run(
            "KIL {0.0, 0.0, 0.0, 0.0}; MOV result.color, {1.0};",
            default_input(),
            &[],
        );
        assert!(!out.killed, "zero is not negative: fragment survives");
        assert_eq!(out.color, [1.0; 4]);
    }

    #[test]
    fn kil_negated_source() {
        // KIL -R0.x kills when R0.x > 0
        let out = run(
            "MOV R0, {0.5}; KIL -R0.x; MOV result.color, {1.0};",
            default_input(),
            &[],
        );
        assert!(out.killed);
    }

    #[test]
    fn tex_samples_bound_texture() {
        let tex = Texture::from_data(
            2,
            2,
            TextureFormat::Rgba,
            (0..16).map(|i| i as f32).collect(),
        )
        .unwrap();
        let input = FragmentInput::for_pixel(1, 1, 0.0, [0.0; 4]);
        let out = run(
            "TEX R0, fragment.texcoord[0], texture[0], 2D; MOV result.color, R0;",
            input,
            &[Some(&tex)],
        );
        assert_eq!(out.color, [12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn tex_unbound_unit_returns_black() {
        let out = run(
            "TEX R0, fragment.texcoord[0], texture[0], 2D; MOV result.color, R0;",
            default_input(),
            &[None],
        );
        assert_eq!(out.color, [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn tex_clamps_to_edge() {
        let tex = Texture::from_data(2, 1, TextureFormat::R, vec![5.0, 7.0]).unwrap();
        let mut input = default_input();
        input.texcoord[0] = [100.0, -3.0, 0.0, 0.0];
        let out = run(
            "TEX R0, fragment.texcoord[0], texture[0], 2D; MOV result.color, R0;",
            input,
            &[Some(&tex)],
        );
        assert_eq!(out.color[0], 7.0);
    }

    #[test]
    fn result_depth_takes_z_channel() {
        // Broadcast swizzle: all channels = R0.x, so z == R0.x.
        let out = run(
            "MOV R0, {0.25, 0.5, 0.75, 1.0}; MOV result.depth, R0.x;",
            default_input(),
            &[],
        );
        assert_eq!(out.depth, Some(0.25));
        // Without broadcast, the z channel is what lands in depth.
        let out = run(
            "MOV result.depth, {0.1, 0.2, 0.3, 0.4};",
            default_input(),
            &[],
        );
        assert_eq!(out.depth, Some(0.3));
    }

    #[test]
    fn write_mask_partial_update() {
        let out = run(
            "MOV R0, {9.0}; MOV R0.yw, {1.0}; MOV result.color, R0;",
            default_input(),
            &[],
        );
        assert_eq!(out.color, [9.0, 1.0, 9.0, 1.0]);
    }

    #[test]
    fn env_parameters_read() {
        let mut env = [[0.0f32; 4]; 32];
        env[3] = [7.0, 8.0, 9.0, 10.0];
        let out = run_env(
            "MOV result.color, program.env[3];",
            default_input(),
            &[],
            &env,
        );
        assert_eq!(out.color, [7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn kil_short_circuits_execution() {
        // Instructions after a taken KIL must not affect output.
        let out = run("KIL {-1.0}; MOV result.depth, {0.5};", default_input(), &[]);
        assert!(out.killed);
        assert_eq!(out.depth, None);
    }

    #[test]
    fn default_color_is_interpolated_color() {
        let input = FragmentInput::for_pixel(0, 0, 0.0, [0.3, 0.4, 0.5, 0.6]);
        let out = run("MOV R0, {1.0};", input, &[]);
        assert_eq!(out.color, [0.3, 0.4, 0.5, 0.6]);
    }

    #[test]
    fn paper_testbit_program_semantics() {
        // TestBit (Routine 4.6): alpha = frac(v / 2^(i+1)); bit i set iff
        // alpha >= 0.5. Check against direct bit arithmetic for a spread of
        // values and bit positions.
        let mut env = [[0.0f32; 4]; 32];
        for value in [0u32, 1, 2, 3, 0b1010, 12345, (1 << 24) - 1] {
            for bit in 0..24u32 {
                env[0] = [1.0 / 2f32.powi(bit as i32 + 1), 0.0, 0.0, 0.0];
                let tex = Texture::from_data(1, 1, TextureFormat::R, vec![value as f32]).unwrap();
                let out = run_env(
                    "TEX R0, fragment.texcoord[0], texture[0], 2D;
                     MUL R1.x, R0.x, program.env[0].x;
                     FRC R1.x, R1.x;
                     MOV result.color.a, R1.x;",
                    default_input(),
                    &[Some(&tex)],
                    &env,
                );
                let expected = (value >> bit) & 1 == 1;
                assert_eq!(
                    out.color[3] >= 0.5,
                    expected,
                    "value {value} bit {bit} alpha {}",
                    out.color[3]
                );
            }
        }
    }
}
