//! Assembler for the ARB-style fragment program text format.
//!
//! Accepts the dialect produced by hand-optimizing Cg compiler output, e.g.:
//!
//! ```text
//! !!ARBfp1.0
//! # copy an attribute channel into the depth buffer
//! TEMP R0, R1;
//! PARAM scale = {5.9604645e-08, 0, 0, 0};
//! TEX R0, fragment.texcoord[0], texture[0], 2D;
//! DP4 R1.x, R0, program.env[1];
//! MUL R1.x, R1.x, scale.x;
//! MOV result.depth, R1.x;
//! END
//! ```

use super::isa::{
    DstOperand, DstReg, FragmentProgram, Instruction, Opcode, SrcOperand, SrcReg, Swizzle,
    WriteMask, NUM_PARAMS, NUM_TEMPS, NUM_TEXCOORDS, NUM_TEXTURE_UNITS,
};
use crate::error::{GpuError, GpuResult};
use std::collections::HashMap;

/// Assemble fragment program source text into an executable program.
pub fn assemble(source: &str) -> GpuResult<FragmentProgram> {
    Assembler::new(source).run()
}

struct Assembler<'a> {
    source: &'a str,
    /// named temporaries declared with TEMP (name -> register index)
    temps: HashMap<String, usize>,
    next_temp: usize,
    /// named constants declared with PARAM (name -> operand)
    params: HashMap<String, SrcReg>,
    literals: Vec<[f32; 4]>,
    instructions: Vec<Instruction>,
}

fn err(msg: impl Into<String>) -> GpuError {
    GpuError::ProgramError(msg.into())
}

impl<'a> Assembler<'a> {
    fn new(source: &'a str) -> Assembler<'a> {
        Assembler {
            source,
            temps: HashMap::new(),
            next_temp: 0,
            params: HashMap::new(),
            literals: Vec::new(),
            instructions: Vec::new(),
        }
    }

    fn run(mut self) -> GpuResult<FragmentProgram> {
        let mut text = String::with_capacity(self.source.len());
        // Strip comments line by line.
        for line in self.source.lines() {
            let line = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            };
            text.push_str(line);
            text.push('\n');
        }

        let mut body = text.trim();
        if let Some(rest) = body.strip_prefix("!!ARBfp1.0") {
            body = rest;
        }

        let mut ended = false;
        for stmt in split_statements(body) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if ended {
                return Err(err(format!("statement after END: {stmt:?}")));
            }
            if stmt == "END" {
                ended = true;
                continue;
            }
            self.parse_statement(stmt)?;
        }

        if self.instructions.is_empty() {
            return Err(err("program has no instructions"));
        }
        Ok(FragmentProgram::from_parts(
            std::mem::take(&mut self.instructions),
            std::mem::take(&mut self.literals),
            self.source.to_string(),
        ))
    }

    fn parse_statement(&mut self, stmt: &str) -> GpuResult<()> {
        let (head, rest) = match stmt.find(char::is_whitespace) {
            Some(i) => (&stmt[..i], stmt[i..].trim()),
            None => (stmt, ""),
        };
        match head.to_ascii_uppercase().as_str() {
            "TEMP" => self.parse_temp_decl(rest),
            "PARAM" => self.parse_param_decl(rest),
            "ATTRIB" | "OUTPUT" | "ALIAS" | "OPTION" => {
                Err(err(format!("unsupported declaration: {head}")))
            }
            _ => self.parse_instruction(head, rest),
        }
    }

    fn parse_temp_decl(&mut self, rest: &str) -> GpuResult<()> {
        for name in rest.split(',') {
            let name = name.trim();
            if name.is_empty() {
                return Err(err("empty TEMP name"));
            }
            if !is_identifier(name) {
                return Err(err(format!("invalid TEMP name {name:?}")));
            }
            if self.temps.contains_key(name) || self.params.contains_key(name) {
                return Err(err(format!("duplicate declaration of {name:?}")));
            }
            if self.next_temp >= NUM_TEMPS {
                return Err(err(format!("too many temporaries (max {NUM_TEMPS})")));
            }
            self.temps.insert(name.to_string(), self.next_temp);
            self.next_temp += 1;
        }
        Ok(())
    }

    fn parse_param_decl(&mut self, rest: &str) -> GpuResult<()> {
        let (name, value) = rest
            .split_once('=')
            .ok_or_else(|| err(format!("PARAM without '=': {rest:?}")))?;
        let name = name.trim();
        if !is_identifier(name) {
            return Err(err(format!("invalid PARAM name {name:?}")));
        }
        if self.temps.contains_key(name) || self.params.contains_key(name) {
            return Err(err(format!("duplicate declaration of {name:?}")));
        }
        let value = value.trim();
        let reg = if let Some(idx) = parse_indexed(value, "program.env")? {
            self.check_param_index(idx)?;
            SrcReg::Param(idx)
        } else if let Some(idx) = parse_indexed(value, "program.local")? {
            self.check_param_index(idx)?;
            SrcReg::Param(idx)
        } else {
            let lit = parse_literal_vector(value)?;
            SrcReg::Literal(self.intern_literal(lit))
        };
        self.params.insert(name.to_string(), reg);
        Ok(())
    }

    fn check_param_index(&self, idx: usize) -> GpuResult<()> {
        if idx >= NUM_PARAMS {
            Err(err(format!("parameter index {idx} out of range")))
        } else {
            Ok(())
        }
    }

    fn intern_literal(&mut self, lit: [f32; 4]) -> usize {
        if let Some(i) = self.literals.iter().position(|l| l == &lit) {
            return i;
        }
        self.literals.push(lit);
        self.literals.len() - 1
    }

    fn parse_instruction(&mut self, head: &str, rest: &str) -> GpuResult<()> {
        let op =
            Opcode::from_mnemonic(head).ok_or_else(|| err(format!("unknown opcode {head:?}")))?;
        let operands = split_operands(rest);

        match op {
            Opcode::Kil => {
                if operands.len() != 1 {
                    return Err(err(format!("KIL takes 1 operand, got {}", operands.len())));
                }
                let src = self.parse_src(operands[0])?;
                self.instructions.push(Instruction::Kil { src });
            }
            Opcode::Tex => {
                // TEX dst, coord, texture[n], 2D;
                if operands.len() != 4 {
                    return Err(err(format!(
                        "TEX takes 4 operands (dst, coord, texture[n], 2D), got {}",
                        operands.len()
                    )));
                }
                let dst = self.parse_dst(operands[0])?;
                let coord = self.parse_src(operands[1])?;
                let unit = parse_indexed(operands[2].trim(), "texture")?
                    .ok_or_else(|| err(format!("expected texture[n], got {:?}", operands[2])))?;
                if unit >= NUM_TEXTURE_UNITS {
                    return Err(err(format!("texture unit {unit} out of range")));
                }
                let target = operands[3].trim().to_ascii_uppercase();
                if target != "2D" {
                    return Err(err(format!("unsupported texture target {target:?}")));
                }
                self.instructions
                    .push(Instruction::Tex { dst, coord, unit });
            }
            _ => {
                let expected = 1 + op.arity();
                if operands.len() != expected {
                    return Err(err(format!(
                        "{} takes {} operands, got {}",
                        op.mnemonic(),
                        expected,
                        operands.len()
                    )));
                }
                let dst = self.parse_dst(operands[0])?;
                let mut srcs: [Option<SrcOperand>; 3] = [None, None, None];
                for (i, text) in operands[1..].iter().enumerate() {
                    srcs[i] = Some(self.parse_src(text)?);
                }
                self.instructions.push(Instruction::Alu { op, dst, srcs });
            }
        }
        Ok(())
    }

    fn parse_dst(&mut self, text: &str) -> GpuResult<DstOperand> {
        let text = text.trim();
        // Split an optional ".mask" suffix — but only the *last* dot, and
        // only if it parses as a mask (so `result.color` keeps its dot).
        let (base, mask) = split_dst_suffix(text);
        let mask = match mask {
            Some(m) => {
                WriteMask::parse(m).ok_or_else(|| err(format!("invalid write mask {m:?}")))?
            }
            None => WriteMask::ALL,
        };
        let reg = match base {
            "result.color" => DstReg::ResultColor,
            "result.depth" => DstReg::ResultDepth,
            name => DstReg::Temp(self.resolve_temp(name)?),
        };
        Ok(DstOperand { reg, mask })
    }

    fn parse_src(&mut self, text: &str) -> GpuResult<SrcOperand> {
        let mut text = text.trim();
        let negate = if let Some(rest) = text.strip_prefix('-') {
            text = rest.trim();
            true
        } else {
            false
        };

        // Inline literal vector or scalar?
        if text.starts_with('{') {
            let lit = parse_literal_vector(text)?;
            let idx = self.intern_literal(lit);
            return Ok(SrcOperand {
                reg: SrcReg::Literal(idx),
                swizzle: Swizzle::IDENTITY,
                negate,
            });
        }
        if let (true, Ok(v)) = (
            text.chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '.'),
            text.parse::<f32>(),
        ) {
            let idx = self.intern_literal([v; 4]);
            return Ok(SrcOperand {
                reg: SrcReg::Literal(idx),
                swizzle: Swizzle::IDENTITY,
                negate,
            });
        }

        let (base, swz) = split_src_suffix(text);
        let swizzle = match swz {
            Some(s) => Swizzle::parse(s).ok_or_else(|| err(format!("invalid swizzle {s:?}")))?,
            None => Swizzle::IDENTITY,
        };

        let reg = if let Some(idx) = parse_indexed(base, "program.env")? {
            self.check_param_index(idx)?;
            SrcReg::Param(idx)
        } else if let Some(idx) = parse_indexed(base, "program.local")? {
            self.check_param_index(idx)?;
            SrcReg::Param(idx)
        } else if let Some(idx) = parse_indexed(base, "fragment.texcoord")? {
            if idx >= NUM_TEXCOORDS {
                return Err(err(format!("texcoord index {idx} out of range")));
            }
            SrcReg::TexCoord(idx)
        } else if base == "fragment.texcoord" {
            SrcReg::TexCoord(0)
        } else if base == "fragment.position" {
            SrcReg::Position
        } else if base == "fragment.color" {
            SrcReg::FragColor
        } else if let Some(&reg) = self.params.get(base) {
            reg
        } else {
            SrcReg::Temp(self.resolve_temp(base)?)
        };
        Ok(SrcOperand {
            reg,
            swizzle,
            negate,
        })
    }

    /// Resolve a temp register name: either declared via TEMP, or the
    /// implicit `R0`..`R11` convention.
    fn resolve_temp(&mut self, name: &str) -> GpuResult<usize> {
        if let Some(&idx) = self.temps.get(name) {
            return Ok(idx);
        }
        if let Some(num) = name.strip_prefix('R').and_then(|n| n.parse::<usize>().ok()) {
            if num < NUM_TEMPS {
                // Implicitly declare Rn as temp register n.
                self.temps.insert(name.to_string(), num);
                self.next_temp = self.next_temp.max(num + 1);
                return Ok(num);
            }
            return Err(err(format!("temporary register index {num} out of range")));
        }
        Err(err(format!("unknown register or identifier {name:?}")))
    }
}

/// Whether a string is a valid identifier (letter/underscore then
/// alphanumerics/underscores).
fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '$' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

/// Split source text into `;`-terminated statements (braces may not contain
/// semicolons in this dialect, so a plain split is sound).
fn split_statements(body: &str) -> impl Iterator<Item = &str> {
    body.split(';')
}

/// Split an operand list on top-level commas (commas inside `{...}` literals
/// do not separate operands).
fn split_operands(rest: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&rest[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = rest[start..].trim();
    if !tail.is_empty() || !out.is_empty() {
        out.push(&rest[start..]);
    }
    out.retain(|s| !s.trim().is_empty());
    out
}

/// Parse `prefix[idx]` and return `idx`, or `None` if `text` doesn't start
/// with `prefix[`.
fn parse_indexed(text: &str, prefix: &str) -> GpuResult<Option<usize>> {
    let Some(rest) = text.strip_prefix(prefix) else {
        return Ok(None);
    };
    let Some(rest) = rest.strip_prefix('[') else {
        return Ok(None);
    };
    let Some(inner) = rest.strip_suffix(']') else {
        return Err(err(format!("missing ']' in {text:?}")));
    };
    inner
        .trim()
        .parse::<usize>()
        .map(Some)
        .map_err(|_| err(format!("invalid index in {text:?}")))
}

/// Parse `{a, b, c, d}` (1–4 components, missing ones default to 0,0,0,1
/// except a 1-element literal which broadcasts) or a bare scalar.
fn parse_literal_vector(text: &str) -> GpuResult<[f32; 4]> {
    let text = text.trim();
    if let Ok(v) = text.parse::<f32>() {
        return Ok([v; 4]);
    }
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(format!("invalid literal {text:?}")))?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.is_empty() || parts.len() > 4 {
        return Err(err(format!("literal must have 1-4 components: {text:?}")));
    }
    let mut vals = Vec::with_capacity(parts.len());
    for p in &parts {
        vals.push(
            p.parse::<f32>()
                .map_err(|_| err(format!("invalid number {p:?} in literal")))?,
        );
    }
    if vals.len() == 1 {
        return Ok([vals[0]; 4]);
    }
    let mut out = [0.0, 0.0, 0.0, 1.0];
    out[..vals.len()].copy_from_slice(&vals);
    Ok(out)
}

/// Split a destination operand into base and optional write-mask suffix.
fn split_dst_suffix(text: &str) -> (&str, Option<&str>) {
    // Try the longest known base names first.
    for base in ["result.color", "result.depth"] {
        if let Some(rest) = text.strip_prefix(base) {
            if rest.is_empty() {
                return (base, None);
            }
            if let Some(mask) = rest.strip_prefix('.') {
                return (base, Some(mask));
            }
        }
    }
    match text.rfind('.') {
        Some(i) => (&text[..i], Some(&text[i + 1..])),
        None => (text, None),
    }
}

/// Split a source operand into base and optional swizzle suffix. The base
/// may itself contain dots (`fragment.texcoord[0]`), so only a final
/// component-letter suffix counts as a swizzle.
fn split_src_suffix(text: &str) -> (&str, Option<&str>) {
    if let Some(i) = text.rfind('.') {
        let suffix = &text[i + 1..];
        if !suffix.is_empty()
            && suffix.len() <= 4
            && suffix.chars().all(|c| {
                matches!(
                    c.to_ascii_lowercase(),
                    'x' | 'y' | 'z' | 'w' | 'r' | 'g' | 'b' | 'a'
                )
            })
        {
            return (&text[..i], Some(suffix));
        }
    }
    (text, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_copy_to_depth_style_program() {
        let prog = assemble(
            r"!!ARBfp1.0
            # copy attribute to depth
            TEMP R0, R1;
            TEX R0, fragment.texcoord[0], texture[0], 2D;
            DP4 R1.x, R0, program.env[1];
            MUL R1.x, R1.x, program.env[0].x;
            MOV result.depth, R1.x;
            END",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        assert!(prog.writes_depth);
        assert!(!prog.has_kil);
        assert_eq!(prog.texture_units, 1);
        // TEX(2) + DP4(1) + MUL(1) + MOV(1)
        assert_eq!(prog.cycle_cost, 5);
    }

    #[test]
    fn assembles_kil_program() {
        let prog = assemble(
            r"TEX R0, fragment.texcoord[0], texture[0], 2D;
              DP4 R1.x, R0, program.env[0];
              SUB R1.x, R1.x, program.env[1].x;
              KIL -R1.x;
              MOV result.color, R0;",
        )
        .unwrap();
        assert!(prog.has_kil);
        assert!(!prog.writes_depth);
        assert_eq!(prog.len(), 5);
    }

    #[test]
    fn named_params_and_temps() {
        let prog = assemble(
            r"TEMP val, acc;
              PARAM half = 0.5;
              PARAM weights = {1.0, 2.0, 3.0, 4.0};
              PARAM scale = program.env[7];
              MOV val, weights;
              MUL acc, val, half.x;
              MUL acc, acc, scale;
              MOV result.color, acc;",
        )
        .unwrap();
        assert_eq!(prog.len(), 4);
        assert_eq!(prog.literals.len(), 2);
        assert!(prog.literals.contains(&[0.5; 4]));
        assert!(prog.literals.contains(&[1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    fn literal_forms() {
        assert_eq!(parse_literal_vector("0.5").unwrap(), [0.5; 4]);
        assert_eq!(parse_literal_vector("{2}").unwrap(), [2.0; 4]);
        assert_eq!(
            parse_literal_vector("{1, 2}").unwrap(),
            [1.0, 2.0, 0.0, 1.0]
        );
        assert_eq!(
            parse_literal_vector("{1, 2, 3, 4}").unwrap(),
            [1.0, 2.0, 3.0, 4.0]
        );
        assert!(parse_literal_vector("{1,2,3,4,5}").is_err());
        assert!(parse_literal_vector("{a}").is_err());
        assert!(parse_literal_vector("nope").is_err());
    }

    #[test]
    fn inline_literals_are_interned() {
        let prog = assemble(
            r"ADD R0, fragment.texcoord[0], 0.5;
              ADD R1, R0, 0.5;
              MOV result.color, R1;",
        )
        .unwrap();
        assert_eq!(prog.literals.len(), 1);
    }

    #[test]
    fn rejects_malformed_programs() {
        // unknown opcode
        assert!(assemble("FOO R0, R1;").is_err());
        // wrong arity
        assert!(assemble("ADD R0, R1;").is_err());
        assert!(assemble("MOV R0, R1, R2;").is_err());
        // bad register
        assert!(assemble("MOV R99, R0;").is_err());
        assert!(assemble("MOV R0, bogus;").is_err());
        // bad texture unit
        assert!(assemble("TEX R0, fragment.texcoord[0], texture[99], 2D;").is_err());
        // bad target
        assert!(assemble("TEX R0, fragment.texcoord[0], texture[0], 3D;").is_err());
        // param out of range
        assert!(assemble("MOV R0, program.env[99]; MOV result.color, R0;").is_err());
        // statements after END
        assert!(assemble("MOV result.color, R0; END MOV result.color, R0;").is_err());
        // empty program
        assert!(assemble("").is_err());
        assert!(assemble("# just a comment").is_err());
        // unsupported declarations
        assert!(assemble("OPTION NV_fragment_program;").is_err());
        // bad swizzle / mask
        assert!(assemble("MOV R0.yx, R1;").is_err());
        assert!(assemble("MOV R0, R1.qq;").is_err());
    }

    #[test]
    fn negation_and_swizzle_parse() {
        let prog = assemble("MOV result.color, -fragment.texcoord[1].wzyx;").unwrap();
        match &prog.instructions[0] {
            Instruction::Alu { srcs, .. } => {
                let s = srcs[0].unwrap();
                assert!(s.negate);
                assert_eq!(s.reg, SrcReg::TexCoord(1));
                assert_eq!(s.swizzle, Swizzle([3, 2, 1, 0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_literal_source() {
        let prog = assemble("SLT R0.x, fragment.position.x, 100.0; MOV result.color, R0;").unwrap();
        assert_eq!(prog.literals[0], [100.0; 4]);
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(assemble("TEMP a, a; MOV result.color, a;").is_err());
        assert!(assemble("PARAM p = 1.0; PARAM p = 2.0; MOV result.color, p;").is_err());
        assert!(assemble("TEMP p; PARAM p = 1.0; MOV result.color, p;").is_err());
    }

    #[test]
    fn too_many_temps_rejected() {
        let mut src = String::from("TEMP ");
        for i in 0..=super::NUM_TEMPS {
            if i > 0 {
                src.push(',');
            }
            src.push_str(&format!("t{i}"));
        }
        src.push_str("; MOV result.color, t0;");
        assert!(assemble(&src).is_err());
    }

    #[test]
    fn texcoord_without_index_defaults_to_zero() {
        let prog = assemble("MOV result.color, fragment.texcoord;").unwrap();
        match &prog.instructions[0] {
            Instruction::Alu { srcs, .. } => {
                assert_eq!(srcs[0].unwrap().reg, SrcReg::TexCoord(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
