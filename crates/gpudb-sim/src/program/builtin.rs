//! The paper's fragment programs, assembled from source exactly as the
//! hand-optimized Cg output would have been.
//!
//! Conventions shared by all builtin programs:
//!
//! * texture unit 0 holds the attribute texture;
//! * `program.env[0].x` holds a scale factor (normalization constant or
//!   `1 / 2^(i+1)` bit divisor);
//! * `program.env[1]` holds a one-hot channel selector so a single program
//!   serves all four channels of an RGBA attribute texture;
//! * `program.env[2..]` hold per-algorithm constants (semi-linear
//!   coefficients, comparison constant).

use super::isa::FragmentProgram;
use super::parser::assemble;
use crate::state::CompareFunc;

/// Environment parameter index of the scale factor.
pub const ENV_SCALE: usize = 0;
/// Environment parameter index of the one-hot channel selector.
pub const ENV_CHANNEL: usize = 1;
/// Environment parameter index of the semi-linear coefficient vector.
pub const ENV_COEFF: usize = 2;
/// Environment parameter index of the semi-linear comparison constant
/// (broadcast in all components).
pub const ENV_CONST: usize = 3;

/// A one-hot RGBA selector for an attribute channel.
pub fn channel_selector(channel: usize) -> [f32; 4] {
    assert!(channel < 4, "channel out of range");
    let mut v = [0.0; 4];
    v[channel] = 1.0;
    v
}

/// `CopyToDepth` (§5.4): "Our copy fragment program implementation requires
/// three instructions. 1. Texture Fetch [...] 2. Normalization [...]
/// 3. Copy To Depth." Our version adds one `DP4` for channel selection so
/// the same program serves any channel of a 4-attribute texture.
pub fn copy_to_depth() -> FragmentProgram {
    assemble(
        "!!ARBfp1.0
         # CopyToDepth: fetch attribute, normalize, write depth.
         TEX R0, fragment.texcoord[0], texture[0], 2D;
         DP4 R1.x, R0, program.env[1];
         MUL R1.x, R1.x, program.env[0].x;
         MOV result.depth, R1.x;
         END",
    )
    .expect("builtin copy_to_depth must assemble")
}

/// `SemilinearFP` (Routine 4.2): computes `dot(s, a) op b` and discards
/// fragments failing the comparison. The comparison is compiled into the
/// instruction sequence (the hardware has no runtime branches), so there is
/// one program per operator.
///
/// `env[ENV_COEFF]` holds `s`, `env[ENV_CONST]` holds `b` broadcast.
pub fn semilinear(op: CompareFunc) -> FragmentProgram {
    // R1.x = dot(s, a) - b; R2.x = pass flag in {0, 1}; kill if flag == 0.
    let flag = match op {
        // dot < b  ⇔  d < 0
        CompareFunc::Less => "SLT R2.x, R1.x, 0.0;",
        // dot <= b ⇔  ¬(d > 0) ⇔ SGE(0, d)
        CompareFunc::LessEqual => "SGE R2.x, -R1.x, 0.0;",
        // dot > b  ⇔  0 < d
        CompareFunc::Greater => "SLT R2.x, -R1.x, 0.0;",
        // dot >= b ⇔  d >= 0
        CompareFunc::GreaterEqual => "SGE R2.x, R1.x, 0.0;",
        // dot == b ⇔  |d| <= 0  ⇔ SGE(-|d|, 0)
        CompareFunc::Equal => "ABS R2.x, R1.x; SGE R2.x, -R2.x, 0.0;",
        // dot != b ⇔  |d| > 0   ⇔ SLT(-|d|, 0)
        CompareFunc::NotEqual => "ABS R2.x, R1.x; SLT R2.x, -R2.x, 0.0;",
        CompareFunc::Always => "SGE R2.x, 0.0, 0.0;",
        CompareFunc::Never => "SLT R2.x, 0.0, 0.0;",
    };
    let source = format!(
        "!!ARBfp1.0
         # SemilinearFP: kill fragments failing dot(s, a) {op:?} b.
         TEX R0, fragment.texcoord[0], texture[0], 2D;
         DP4 R1.x, R0, program.env[{coeff}];
         SUB R1.x, R1.x, program.env[{cnst}].x;
         {flag}
         SUB R2.x, R2.x, 0.5;
         KIL R2.x;
         MOV result.color, R0;
         END",
        coeff = ENV_COEFF,
        cnst = ENV_CONST,
    );
    assemble(&source).expect("builtin semilinear must assemble")
}

/// `TestBit` (Routine 4.6): "we divide each value by 2^(i+1) and put the
/// fractional part of the result into the alpha channel", so the alpha test
/// (`alpha >= 0.5`) passes exactly when bit `i` is set.
///
/// `env[ENV_SCALE].x` must hold `1 / 2^(i+1)`.
pub fn test_bit() -> FragmentProgram {
    assemble(
        "!!ARBfp1.0
         # TestBit: alpha = frac(v / 2^(i+1)).
         TEX R0, fragment.texcoord[0], texture[0], 2D;
         DP4 R1.x, R0, program.env[1];
         MUL R1.x, R1.x, program.env[0].x;
         FRC R1.x, R1.x;
         MOV result.color.a, R1.x;
         END",
    )
    .expect("builtin test_bit must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::interp::{execute, FragmentContext, FragmentInput};
    use crate::program::isa::NUM_PARAMS;
    use crate::texture::{Texture, TextureFormat};

    fn run_on_value(
        prog: &FragmentProgram,
        value: f32,
        env: &mut [[f32; 4]; NUM_PARAMS],
    ) -> crate::program::interp::ProgramOutput {
        let tex = Texture::from_data(1, 1, TextureFormat::R, vec![value]).unwrap();
        let input = FragmentInput::for_pixel(0, 0, 0.0, [0.0, 0.0, 0.0, 1.0]);
        let textures: [Option<&Texture>; 1] = [Some(&tex)];
        let ctx = FragmentContext {
            textures: &textures,
            env,
        };
        execute(prog, &input, &ctx)
    }

    #[test]
    fn channel_selector_one_hot() {
        assert_eq!(channel_selector(0), [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(channel_selector(3), [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "channel out of range")]
    fn channel_selector_bounds() {
        channel_selector(4);
    }

    #[test]
    fn copy_to_depth_is_paper_sized() {
        let prog = copy_to_depth();
        // TEX + select + normalize + move: the paper's 3 plus channel select.
        assert_eq!(prog.len(), 4);
        assert!(prog.writes_depth);
        assert!(!prog.has_kil);
    }

    #[test]
    fn copy_to_depth_normalizes() {
        let prog = copy_to_depth();
        let mut env = [[0.0f32; 4]; NUM_PARAMS];
        env[ENV_SCALE] = [1.0 / 1000.0, 0.0, 0.0, 0.0];
        env[ENV_CHANNEL] = channel_selector(0);
        let out = run_on_value(&prog, 250.0, &mut env);
        assert_eq!(out.depth, Some(0.25));
    }

    #[test]
    fn semilinear_all_operators() {
        let mut env = [[0.0f32; 4]; NUM_PARAMS];
        env[ENV_COEFF] = [2.0, 0.0, 0.0, 0.0]; // dot = 2 * a.x
        for op in [
            CompareFunc::Less,
            CompareFunc::LessEqual,
            CompareFunc::Greater,
            CompareFunc::GreaterEqual,
            CompareFunc::Equal,
            CompareFunc::NotEqual,
            CompareFunc::Always,
            CompareFunc::Never,
        ] {
            let prog = semilinear(op);
            assert!(prog.has_kil);
            for (value, b) in [(1.0f32, 4.0f32), (2.0, 4.0), (3.0, 4.0)] {
                env[ENV_CONST] = [b; 4];
                let out = run_on_value(&prog, value, &mut env);
                let dot = 2.0 * value;
                let expected_pass = op.eval(dot, b);
                assert_eq!(!out.killed, expected_pass, "op {op:?}, dot {dot}, b {b}");
            }
        }
    }

    #[test]
    fn test_bit_is_paper_sized() {
        // §6.2.3: "we used a fragment program with at least 5 instructions
        // to test if the i-th bit of a texel is 1."
        let prog = test_bit();
        assert_eq!(prog.len(), 5);
        assert!(!prog.writes_depth);
        assert!(!prog.has_kil);
    }

    #[test]
    fn test_bit_alpha_encodes_bit() {
        let prog = test_bit();
        let mut env = [[0.0f32; 4]; NUM_PARAMS];
        env[ENV_CHANNEL] = channel_selector(0);
        for value in [0u32, 1, 5, 0xAAAA, (1 << 24) - 1] {
            for bit in 0..24 {
                env[ENV_SCALE] = [0.5f32.powi(bit + 1), 0.0, 0.0, 0.0];
                let out = run_on_value(&prog, value as f32, &mut env);
                assert_eq!(
                    out.color[3] >= 0.5,
                    (value >> bit) & 1 == 1,
                    "value {value}, bit {bit}"
                );
            }
        }
    }
}
