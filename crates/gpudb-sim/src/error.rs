//! Error types for the GPU simulator.

use std::fmt;

/// Errors raised by the simulated device.
///
/// The 2004-era OpenGL driver this simulator stands in for reported most of
/// these as `GL_INVALID_*` errors or allocation failures; we surface them as
/// a typed enum so that the database layer can react (e.g. fall back to
/// out-of-core execution when VRAM is exhausted).
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// A texture allocation would exceed the device's video memory budget.
    OutOfVideoMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A texture id did not refer to a live texture.
    InvalidTexture(u32),
    /// A texture unit index was out of range.
    InvalidTextureUnit(usize),
    /// Texture dimensions were zero or exceed the maximum supported size.
    InvalidTextureSize {
        /// Requested width in texels.
        width: usize,
        /// Requested height in texels.
        height: usize,
    },
    /// The supplied texel data length did not match `width * height * channels`.
    TextureDataMismatch {
        /// Required number of f32 values.
        expected: usize,
        /// Provided number of f32 values.
        actual: usize,
    },
    /// A channel count outside 1..=4 was requested.
    InvalidChannelCount(u8),
    /// A draw call referenced a texture unit with no bound texture.
    UnboundTextureUnit(usize),
    /// A fragment program failed to assemble.
    ProgramError(String),
    /// A draw rectangle fell outside the framebuffer.
    RectOutOfBounds {
        /// The offending rectangle.
        rect: crate::raster::Rect,
        /// Framebuffer width in pixels.
        width: usize,
        /// Framebuffer height in pixels.
        height: usize,
    },
    /// `end_occlusion_query` without a matching `begin_occlusion_query`,
    /// or nested `begin_occlusion_query`.
    OcclusionQueryMisuse(&'static str),
    /// An environment/local parameter index was out of range.
    InvalidParameterIndex(usize),
    /// The hardware profile does not support the requested feature.
    UnsupportedFeature(&'static str),
    /// An occlusion query result was lost in flight (transient driver
    /// fault). The query is consumed; re-issuing the counting pass is safe.
    OcclusionQueryLost,
    /// A buffer readback failed its integrity check (transient transfer
    /// corruption detected at the driver boundary). No data was returned;
    /// retrying the readback is safe.
    ReadbackCorrupted {
        /// Which buffer was being read ("depth", "stencil", "color").
        buffer: &'static str,
        /// Bytes that were in flight when the corruption was detected.
        bytes: usize,
    },
    /// The device was reset (driver restart / TDR). All textures, bound
    /// state, and framebuffer contents are gone; the context must be
    /// rebuilt from host data before any further device work.
    DeviceReset,
}

/// Coarse classification of a device error, driving the resilience
/// layer's response: retry, degrade, fall back, or surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Momentary fault; the operation can simply be retried.
    Transient,
    /// A resource limit was hit; a smaller-footprint strategy may succeed.
    Resource,
    /// The device itself failed; GPU state is unrecoverable without a
    /// rebuild, and a non-GPU execution path may be required.
    Device,
    /// A programming/usage error; retrying cannot help.
    Logic,
}

impl GpuError {
    /// Classify this error for the retry/degradation policy.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            GpuError::OcclusionQueryLost | GpuError::ReadbackCorrupted { .. } => {
                FaultClass::Transient
            }
            GpuError::OutOfVideoMemory { .. } => FaultClass::Resource,
            GpuError::DeviceReset => FaultClass::Device,
            _ => FaultClass::Logic,
        }
    }
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfVideoMemory {
                requested,
                available,
            } => write!(
                f,
                "out of video memory: requested {requested} bytes, {available} available"
            ),
            GpuError::InvalidTexture(id) => write!(f, "invalid texture id {id}"),
            GpuError::InvalidTextureUnit(u) => write!(f, "invalid texture unit {u}"),
            GpuError::InvalidTextureSize { width, height } => {
                write!(f, "invalid texture size {width}x{height}")
            }
            GpuError::TextureDataMismatch { expected, actual } => {
                write!(f, "texture data length {actual}, expected {expected}")
            }
            GpuError::InvalidChannelCount(c) => write!(f, "invalid channel count {c}"),
            GpuError::UnboundTextureUnit(u) => write!(f, "no texture bound to unit {u}"),
            GpuError::ProgramError(msg) => write!(f, "fragment program error: {msg}"),
            GpuError::RectOutOfBounds {
                rect,
                width,
                height,
            } => write!(f, "draw rect {rect:?} outside framebuffer {width}x{height}"),
            GpuError::OcclusionQueryMisuse(msg) => write!(f, "occlusion query misuse: {msg}"),
            GpuError::InvalidParameterIndex(i) => write!(f, "invalid parameter index {i}"),
            GpuError::UnsupportedFeature(feature) => {
                write!(f, "hardware profile does not support {feature}")
            }
            GpuError::OcclusionQueryLost => {
                write!(f, "occlusion query result lost (transient)")
            }
            GpuError::ReadbackCorrupted { buffer, bytes } => {
                write!(
                    f,
                    "readback of {buffer} buffer failed integrity check ({bytes} bytes in flight)"
                )
            }
            GpuError::DeviceReset => write!(f, "device reset: GPU context lost"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Convenience alias used throughout the simulator.
pub type GpuResult<T> = Result<T, GpuError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::Rect;

    /// One instance of every variant, paired with a fragment its Display
    /// must contain and its fault class. A new variant that is not added
    /// here fails the count assertion below.
    fn all_variants() -> Vec<(GpuError, &'static str, FaultClass)> {
        vec![
            (
                GpuError::OutOfVideoMemory {
                    requested: 4096,
                    available: 128,
                },
                "out of video memory",
                FaultClass::Resource,
            ),
            (
                GpuError::InvalidTexture(9),
                "invalid texture id 9",
                FaultClass::Logic,
            ),
            (
                GpuError::InvalidTextureUnit(5),
                "invalid texture unit 5",
                FaultClass::Logic,
            ),
            (
                GpuError::InvalidTextureSize {
                    width: 0,
                    height: 7,
                },
                "0x7",
                FaultClass::Logic,
            ),
            (
                GpuError::TextureDataMismatch {
                    expected: 16,
                    actual: 12,
                },
                "length 12, expected 16",
                FaultClass::Logic,
            ),
            (
                GpuError::InvalidChannelCount(6),
                "channel count 6",
                FaultClass::Logic,
            ),
            (
                GpuError::UnboundTextureUnit(2),
                "no texture bound to unit 2",
                FaultClass::Logic,
            ),
            (
                GpuError::ProgramError("bad opcode".into()),
                "bad opcode",
                FaultClass::Logic,
            ),
            (
                GpuError::RectOutOfBounds {
                    rect: Rect::new(0, 0, 10, 10),
                    width: 4,
                    height: 4,
                },
                "outside framebuffer 4x4",
                FaultClass::Logic,
            ),
            (
                GpuError::OcclusionQueryMisuse("nested begin"),
                "nested begin",
                FaultClass::Logic,
            ),
            (
                GpuError::InvalidParameterIndex(33),
                "parameter index 33",
                FaultClass::Logic,
            ),
            (
                GpuError::UnsupportedFeature("depth bounds test"),
                "does not support depth bounds test",
                FaultClass::Logic,
            ),
            (
                GpuError::OcclusionQueryLost,
                "occlusion query result lost",
                FaultClass::Transient,
            ),
            (
                GpuError::ReadbackCorrupted {
                    buffer: "stencil",
                    bytes: 256,
                },
                "stencil buffer",
                FaultClass::Transient,
            ),
            (GpuError::DeviceReset, "device reset", FaultClass::Device),
        ]
    }

    #[test]
    fn every_variant_displays_and_classifies() {
        let variants = all_variants();
        // Keep this table exhaustive: bump when adding a variant.
        assert_eq!(variants.len(), 15);
        for (err, fragment, class) in variants {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment:?}"
            );
            assert_eq!(err.fault_class(), class, "{err}");
        }
    }

    #[test]
    fn transient_errors_are_exactly_the_retryable_ones() {
        let retryable: Vec<GpuError> = all_variants()
            .into_iter()
            .filter(|(_, _, c)| *c == FaultClass::Transient)
            .map(|(e, _, _)| e)
            .collect();
        assert_eq!(retryable.len(), 2);
        assert!(retryable.contains(&GpuError::OcclusionQueryLost));
        assert!(retryable
            .iter()
            .any(|e| matches!(e, GpuError::ReadbackCorrupted { .. })));
    }
}
