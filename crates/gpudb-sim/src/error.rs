//! Error types for the GPU simulator.

use std::fmt;

/// Errors raised by the simulated device.
///
/// The 2004-era OpenGL driver this simulator stands in for reported most of
/// these as `GL_INVALID_*` errors or allocation failures; we surface them as
/// a typed enum so that the database layer can react (e.g. fall back to
/// out-of-core execution when VRAM is exhausted).
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// A texture allocation would exceed the device's video memory budget.
    OutOfVideoMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// A texture id did not refer to a live texture.
    InvalidTexture(u32),
    /// A texture unit index was out of range.
    InvalidTextureUnit(usize),
    /// Texture dimensions were zero or exceed the maximum supported size.
    InvalidTextureSize {
        /// Requested width in texels.
        width: usize,
        /// Requested height in texels.
        height: usize,
    },
    /// The supplied texel data length did not match `width * height * channels`.
    TextureDataMismatch {
        /// Required number of f32 values.
        expected: usize,
        /// Provided number of f32 values.
        actual: usize,
    },
    /// A channel count outside 1..=4 was requested.
    InvalidChannelCount(u8),
    /// A draw call referenced a texture unit with no bound texture.
    UnboundTextureUnit(usize),
    /// A fragment program failed to assemble.
    ProgramError(String),
    /// A draw rectangle fell outside the framebuffer.
    RectOutOfBounds {
        /// The offending rectangle.
        rect: crate::raster::Rect,
        /// Framebuffer width in pixels.
        width: usize,
        /// Framebuffer height in pixels.
        height: usize,
    },
    /// `end_occlusion_query` without a matching `begin_occlusion_query`,
    /// or nested `begin_occlusion_query`.
    OcclusionQueryMisuse(&'static str),
    /// An environment/local parameter index was out of range.
    InvalidParameterIndex(usize),
    /// The hardware profile does not support the requested feature.
    UnsupportedFeature(&'static str),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfVideoMemory {
                requested,
                available,
            } => write!(
                f,
                "out of video memory: requested {requested} bytes, {available} available"
            ),
            GpuError::InvalidTexture(id) => write!(f, "invalid texture id {id}"),
            GpuError::InvalidTextureUnit(u) => write!(f, "invalid texture unit {u}"),
            GpuError::InvalidTextureSize { width, height } => {
                write!(f, "invalid texture size {width}x{height}")
            }
            GpuError::TextureDataMismatch { expected, actual } => {
                write!(f, "texture data length {actual}, expected {expected}")
            }
            GpuError::InvalidChannelCount(c) => write!(f, "invalid channel count {c}"),
            GpuError::UnboundTextureUnit(u) => write!(f, "no texture bound to unit {u}"),
            GpuError::ProgramError(msg) => write!(f, "fragment program error: {msg}"),
            GpuError::RectOutOfBounds {
                rect,
                width,
                height,
            } => write!(f, "draw rect {rect:?} outside framebuffer {width}x{height}"),
            GpuError::OcclusionQueryMisuse(msg) => write!(f, "occlusion query misuse: {msg}"),
            GpuError::InvalidParameterIndex(i) => write!(f, "invalid parameter index {i}"),
            GpuError::UnsupportedFeature(feature) => {
                write!(f, "hardware profile does not support {feature}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Convenience alias used throughout the simulator.
pub type GpuResult<T> = Result<T, GpuError>;
