//! # gpudb-sim — a simulated 2004-era programmable GPU
//!
//! This crate is the substrate for a reproduction of Govindaraju, Lloyd,
//! Wang, Lin & Manocha, *Fast Computation of Database Operations using
//! Graphics Processors* (SIGMOD 2004). The paper runs database primitives
//! on an NVIDIA GeForce FX 5900 Ultra through OpenGL; that hardware (and
//! the fixed-function features the algorithms rely on) is not available
//! here, so this crate implements the pipeline itself:
//!
//! * [`texture`] — float textures, the GPU-resident data representation;
//! * [`buffers`] — color, **24-bit** depth, and 8-bit stencil buffers;
//! * [`state`] — alpha/stencil/depth/depth-bounds tests and write masks;
//! * [`program`] — an `ARB_fragment_program`-style ISA with assembler and
//!   interpreter, plus the paper's builtin programs;
//! * [`raster`] / `pipeline` — screen-aligned quad rasterization through
//!   the authentic per-fragment test sequence, with early-z modeling;
//! * [`device`] — the stateful [`device::Gpu`] facade with occlusion
//!   queries and costed transfers;
//! * [`cost`] / [`stats`] — a cycle cost model calibrated against the
//!   paper's published anchors, so that modeled timings reproduce the
//!   paper's performance *shapes* even though the simulator itself runs on
//!   a CPU.
//!
//! ## Example
//!
//! ```
//! use gpudb_sim::device::Gpu;
//! use gpudb_sim::state::CompareFunc;
//! use gpudb_sim::texture::{Texture, TextureFormat};
//! use gpudb_sim::buffers::DEPTH_SCALE;
//!
//! // A 4-pixel device holding one attribute.
//! let mut gpu = Gpu::geforce_fx_5900(4, 1);
//! let tex = Texture::from_data(4, 1, TextureFormat::R,
//!     vec![10.0, 20.0, 30.0, 40.0]).unwrap();
//! let id = gpu.create_texture(tex).unwrap();
//!
//! // Copy the attribute into the depth buffer, then count values > 25
//! // with a depth-tested quad and an occlusion query.
//! gpu.bind_texture(0, Some(id)).unwrap();
//! gpu.bind_program(Some(gpudb_sim::program::builtin::copy_to_depth()));
//! gpu.set_program_env(0, [1.0 / DEPTH_SCALE as f32, 0.0, 0.0, 0.0]).unwrap();
//! gpu.set_program_env(1, [1.0, 0.0, 0.0, 0.0]).unwrap();
//! gpu.set_depth_test(true, CompareFunc::Always);
//! gpu.set_depth_write(true);
//! gpu.draw_full_quad(0.0).unwrap();
//!
//! gpu.bind_program(None);
//! gpu.set_depth_write(false);
//! gpu.set_depth_test(true, CompareFunc::Less); // 25 < stored attribute
//! gpu.begin_occlusion_query().unwrap();
//! gpu.draw_full_quad(25.0 / DEPTH_SCALE as f32).unwrap();
//! assert_eq!(gpu.end_occlusion_query().unwrap(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
// Fallible device paths must surface typed errors, not panic: unwrap is
// banned in library code (tests may unwrap freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod buffers;
pub mod cost;
pub mod device;
pub mod error;
pub mod fault;
mod mipmap;
mod pipeline;
pub mod program;
pub mod raster;
pub mod span;
pub mod state;
pub mod stats;
pub mod texture;
pub mod trace;

pub use cost::{DrawCost, HardwareProfile};
pub use device::Gpu;
pub use error::{FaultClass, GpuError, GpuResult};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultStats};
pub use mipmap::MipmapReduction;
pub use raster::Rect;
pub use span::{SpanKind, SpanSink};
pub use state::{CompareFunc, StencilOp};
pub use stats::{GpuStats, Phase, PhaseTimes, WorkCounters};
pub use texture::{Texture, TextureFormat, TextureId};
pub use trace::{DeviceCaps, DrawPass, PassOp, PassPlan, ProgramInfo, RecordMode, TraceRecorder};
