//! Span sink interface: hierarchical tracing driven by the device.
//!
//! The pass-plan recorder ([`crate::trace`]) captures *what* the device was
//! asked to do; a [`SpanSink`] captures *when*, on the modeled clock. The
//! device opens a leaf span around every costed operation (draw, readback,
//! upload) and emits instant events for cheap calls (clears, occlusion
//! begin/end); higher layers open enclosing spans (operator, plan stage,
//! query) through [`crate::device::Gpu::span_begin`].
//!
//! Timestamps are **modeled nanoseconds** — the cumulative modeled cost of
//! the device at the moment of the call, never wall clock — so a trace is
//! byte-identical across runs. The sink never touches [`crate::stats::GpuStats`],
//! so attaching one changes neither results nor modeled cost.

use crate::stats::WorkCounters;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// The level of a span in the `query → stage → operator → pass` hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// A whole query execution.
    Query,
    /// A plan stage within a query (selection, one aggregate, ...).
    Stage,
    /// One database operator invocation (what a `MetricsRecord` covers).
    Operator,
    /// One rendering pass (a draw call, or an on-card copy).
    Pass,
    /// A device → host transfer (buffer readback, occlusion sync).
    Readback,
    /// A host → device transfer (texture upload).
    Upload,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Human-readable name, stable across versions (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Stage => "stage",
            SpanKind::Operator => "operator",
            SpanKind::Pass => "pass",
            SpanKind::Readback => "readback",
            SpanKind::Upload => "upload",
            SpanKind::Other => "other",
        }
    }

    /// Depth of this kind in the canonical hierarchy; used by collectors
    /// to filter by [`detail level`](SpanKind) without tracking parents.
    pub fn depth(self) -> u8 {
        match self {
            SpanKind::Query => 0,
            SpanKind::Stage => 1,
            SpanKind::Operator => 2,
            SpanKind::Pass | SpanKind::Readback | SpanKind::Upload | SpanKind::Other => 3,
        }
    }
}

/// Receiver for span begin/end pairs and instant events.
///
/// Implementations must tolerate unbalanced calls (an error path may leave
/// spans open; `end_span` with no open span must be a no-op). `clock_ns`
/// is the device's modeled clock — see the module docs. `counters` is a
/// snapshot of the device's cumulative [`WorkCounters`] at the call.
pub trait SpanSink: Send {
    /// A span opens at `clock_ns`.
    fn begin_span(&mut self, kind: SpanKind, name: &str, clock_ns: u64, counters: &WorkCounters);
    /// The most recently opened span closes at `clock_ns`.
    fn end_span(&mut self, clock_ns: u64, counters: &WorkCounters);
    /// A zero-duration event at `clock_ns`, attached to the open span.
    fn instant(&mut self, name: &str, detail: &str, clock_ns: u64);
    /// Recover the concrete sink after [`crate::device::Gpu::take_span_sink`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_distinct() {
        let kinds = [
            SpanKind::Query,
            SpanKind::Stage,
            SpanKind::Operator,
            SpanKind::Pass,
            SpanKind::Readback,
            SpanKind::Upload,
            SpanKind::Other,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        assert!(SpanKind::Query.depth() < SpanKind::Stage.depth());
        assert!(SpanKind::Stage.depth() < SpanKind::Operator.depth());
        assert!(SpanKind::Operator.depth() < SpanKind::Pass.depth());
    }
}
