//! Property-based tests for the simulator's core invariants.

use gpudb_sim::buffers::{dequantize_depth, quantize_depth, DEPTH_MAX, DEPTH_SCALE};
use gpudb_sim::program::interp::{execute, FragmentContext, FragmentInput};
use gpudb_sim::program::parser::assemble;
use gpudb_sim::state::{CompareFunc, StencilOp, StencilState};
use gpudb_sim::texture::{decode_u32, encode_u32};
use gpudb_sim::{Gpu, Rect, Texture, TextureFormat};
use proptest::prelude::*;

const ALL_OPS: [CompareFunc; 8] = [
    CompareFunc::Never,
    CompareFunc::Less,
    CompareFunc::Equal,
    CompareFunc::LessEqual,
    CompareFunc::Greater,
    CompareFunc::NotEqual,
    CompareFunc::GreaterEqual,
    CompareFunc::Always,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn depth_quantization_exact_and_monotone(a in 0u32..=DEPTH_MAX, b in 0u32..=DEPTH_MAX) {
        // Exactness through both f64 and f32 normalization paths.
        prop_assert_eq!(quantize_depth(a as f64 / DEPTH_SCALE), a);
        let f32_path = a as f32 * (1.0f32 / DEPTH_SCALE as f32);
        prop_assert_eq!(quantize_depth(f32_path as f64), a);
        // Monotonicity.
        if a <= b {
            prop_assert!(
                quantize_depth(a as f64 / DEPTH_SCALE) <= quantize_depth(b as f64 / DEPTH_SCALE)
            );
        }
        // Dequantize inverts.
        prop_assert_eq!(quantize_depth(dequantize_depth(a)), a);
    }

    #[test]
    fn texel_integer_roundtrip(v in 0u32..(1 << 24)) {
        prop_assert_eq!(decode_u32(encode_u32(v)), v);
    }

    #[test]
    fn compare_func_algebra(a in 0i64..100, b in 0i64..100, op_idx in 0usize..8) {
        let op = ALL_OPS[op_idx];
        // converse flips operands; negate complements; double application
        // is the identity.
        prop_assert_eq!(op.eval(a, b), op.converse().eval(b, a));
        prop_assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
        prop_assert_eq!(op.converse().converse(), op);
        prop_assert_eq!(op.negate().negate(), op);
    }

    #[test]
    fn stencil_op_bounds(value in any::<u8>(), reference in any::<u8>(), op_idx in 0usize..8) {
        let ops = [
            StencilOp::Keep,
            StencilOp::Zero,
            StencilOp::Replace,
            StencilOp::Incr,
            StencilOp::Decr,
            StencilOp::Invert,
            StencilOp::IncrWrap,
            StencilOp::DecrWrap,
        ];
        let op = ops[op_idx];
        let out = op.apply(value, reference);
        // Self-inverse / idempotence laws per op.
        match op {
            StencilOp::Keep => prop_assert_eq!(out, value),
            StencilOp::Zero => prop_assert_eq!(out, 0),
            StencilOp::Replace => prop_assert_eq!(out, reference),
            StencilOp::Invert => prop_assert_eq!(StencilOp::Invert.apply(out, reference), value),
            StencilOp::IncrWrap => {
                prop_assert_eq!(StencilOp::DecrWrap.apply(out, reference), value)
            }
            StencilOp::DecrWrap => {
                prop_assert_eq!(StencilOp::IncrWrap.apply(out, reference), value)
            }
            StencilOp::Incr => prop_assert!(out == value.saturating_add(1)),
            StencilOp::Decr => prop_assert!(out == value.saturating_sub(1)),
        }
    }

    #[test]
    fn compare_func_converse_negate_commute(a in 0i64..100, b in 0i64..100, op_idx in 0usize..8) {
        let op = ALL_OPS[op_idx];
        // The two involutions commute, and their composition is the
        // complement of the converse relation.
        prop_assert_eq!(op.converse().negate(), op.negate().converse());
        prop_assert_eq!(op.converse().negate().eval(a, b), !op.eval(b, a));
    }

    #[test]
    fn stencil_incr_decr_clamp(value in any::<u8>(), reference in any::<u8>()) {
        // §4.3's CNF protocol relies on Incr/Decr saturating at the ends
        // of the u8 range rather than wrapping.
        prop_assert_eq!(StencilOp::Incr.apply(255, reference), 255);
        prop_assert_eq!(StencilOp::Decr.apply(0, reference), 0);
        // Monotone by one step everywhere else.
        let up = StencilOp::Incr.apply(value, reference);
        prop_assert!(up >= value && up as u16 <= value as u16 + 1);
        let down = StencilOp::Decr.apply(value, reference);
        prop_assert!(down <= value && value as u16 <= down as u16 + 1);
    }

    #[test]
    fn record_only_draws_cost_nothing(
        w in 1usize..12,
        h in 1usize..12,
        depth in 0.0f32..1.0,
    ) {
        use gpudb_sim::trace::RecordMode;
        let mut gpu = Gpu::geforce_fx_5900(w, h);
        gpu.set_draw_color([0.25, 0.5, 0.75, 1.0]);
        gpu.draw_full_quad(0.0).unwrap();
        let pixels_before = gpu.read_color_buffer().unwrap();
        let counters_before = gpu.stats().counters();

        gpu.enable_tracing(RecordMode::RecordOnly);
        gpu.begin_plan("dry-run");
        gpu.set_depth_test(true, CompareFunc::Greater);
        gpu.set_draw_color([1.0, 0.0, 0.0, 1.0]);
        gpu.begin_occlusion_query().unwrap();
        gpu.draw_full_quad(depth).unwrap();
        let count = gpu.end_occlusion_query().unwrap();
        let plans = gpu.take_plans();
        gpu.disable_tracing();

        // The dry run recorded the plan but shaded nothing, counted
        // nothing and left framebuffer and counters untouched.
        prop_assert_eq!(count, 0);
        prop_assert_eq!(plans.len(), 1);
        prop_assert_eq!(plans[0].draw_count(), 1);
        prop_assert_eq!(gpu.stats().counters(), counters_before);
        prop_assert_eq!(gpu.read_color_buffer().unwrap(), pixels_before);
    }

    #[test]
    fn stencil_write_mask_partitions_bits(
        stored in any::<u8>(),
        reference in any::<u8>(),
        write_mask in any::<u8>(),
    ) {
        let st = StencilState {
            write_mask,
            reference,
            ..Default::default()
        };
        let out = st.write(stored, StencilOp::Replace);
        prop_assert_eq!(out & write_mask, reference & write_mask);
        prop_assert_eq!(out & !write_mask, stored & !write_mask);
    }

    #[test]
    fn straight_line_programs_match_host_eval(
        ops in prop::collection::vec((0usize..6, -8.0f32..8.0, -8.0f32..8.0), 1..12),
    ) {
        // Build a straight-line program accumulating into R0 and mirror it
        // on the host; the interpreter must agree exactly.
        let mut src = String::from("MOV R0, {0.0};\n");
        let mut host = [0.0f32; 4];
        type HostOp = fn(f32, f32, f32) -> f32;
        for (op_idx, x, y) in &ops {
            let (mnemonic, f): (&str, HostOp) = match op_idx {
                0 => ("ADD", |a, b, _| a + b),
                1 => ("SUB", |a, b, _| a - b),
                2 => ("MUL", |a, b, _| a * b),
                3 => ("MIN", |a, b, _| a.min(b)),
                4 => ("MAX", |a, b, _| a.max(b)),
                _ => ("MAD", |a, b, c| a * b + c),
            };
            if mnemonic == "MAD" {
                src.push_str(&format!("MAD R0, R0, {x:?}, {y:?};\n"));
                for h in &mut host {
                    *h = f(*h, *x, *y);
                }
            } else {
                src.push_str(&format!("{mnemonic} R1, R0, {x:?};\nMOV R0, R1;\n"));
                for h in &mut host {
                    *h = f(*h, *x, 0.0);
                }
                let _ = y;
            }
        }
        src.push_str("MOV result.color, R0;\n");
        let program = assemble(&src).unwrap();
        let input = FragmentInput::for_pixel(0, 0, 0.0, [0.0; 4]);
        let ctx = FragmentContext { textures: &[], env: &[[0.0; 4]; 32] };
        let out = execute(&program, &input, &ctx);
        prop_assert_eq!(out.color, host);
    }

    #[test]
    fn occlusion_counts_match_reference(
        values in prop::collection::vec(0u32..=DEPTH_MAX, 1..100),
        constant in 0u32..=DEPTH_MAX,
        op_idx in 0usize..8,
    ) {
        // Load values into the depth buffer via a depth-writing program,
        // then count depth-test passes against `constant op value`.
        let op = ALL_OPS[op_idx];
        let width = values.len().min(16);
        let height = values.len().div_ceil(width);
        let mut gpu = Gpu::geforce_fx_5900(width, height);
        let mut padded = values.clone();
        padded.resize(width * height, 0);
        let tex = Texture::from_data(width, height, TextureFormat::R,
            padded.iter().map(|&v| v as f32).collect()).unwrap();
        let id = gpu.create_texture(tex).unwrap();
        gpu.bind_texture(0, Some(id)).unwrap();
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             MUL R1.x, R0.x, program.env[0].x;
             MOV result.depth, R1.x;",
        ).unwrap();
        gpu.set_program_env(0, [1.0 / DEPTH_SCALE as f32, 0.0, 0.0, 0.0]).unwrap();
        gpu.set_depth_test(true, CompareFunc::Always);
        gpu.set_depth_write(true);
        gpu.draw_full_quad(0.0).unwrap();

        gpu.bind_program(None);
        gpu.set_depth_write(false);
        gpu.set_depth_test(true, op);
        gpu.begin_occlusion_query().unwrap();
        let rects = Rect::covering_prefix(values.len(), width);
        gpu.draw_quad(&rects, constant as f32 / DEPTH_SCALE as f32).unwrap();
        let count = gpu.end_occlusion_query().unwrap();

        let expected = values.iter().filter(|&&v| op.eval(constant, v)).count() as u64;
        prop_assert_eq!(count, expected);
    }

    #[test]
    fn color_buffer_copy_roundtrip(
        w in 1usize..16,
        h in 1usize..16,
        r in 0.0f32..1.0,
    ) {
        let mut gpu = Gpu::geforce_fx_5900(w, h);
        gpu.set_draw_color([r, 1.0 - r, 0.5, 1.0]);
        gpu.draw_full_quad(0.0).unwrap();
        let id = gpu
            .create_texture(Texture::zeroed(w, h, TextureFormat::Rgba).unwrap())
            .unwrap();
        gpu.copy_color_to_texture(id, 0, 0, w, h).unwrap();
        let tex = gpu.texture(id).unwrap();
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(tex.fetch(x, y), [r, 1.0 - r, 0.5, 1.0]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The assembler must never panic: arbitrary input is either a valid
    // program or a clean ProgramError.
    #[test]
    fn assembler_never_panics(input in "\\PC{0,200}") {
        let _ = assemble(&input);
    }

    // Structured near-miss inputs built from real fragments: still no
    // panics, and anything accepted must execute without panicking too.
    #[test]
    fn assembler_handles_shuffled_fragments(
        pieces in prop::collection::vec(0usize..12, 0..20),
    ) {
        const FRAGMENTS: [&str; 12] = [
            "MOV R0, R1;",
            "TEX R0, fragment.texcoord[0], texture[0], 2D;",
            "DP4 R1.x, R0, program.env[1];",
            "KIL -R1.x;",
            "MOV result.color, R0;",
            "MOV result.depth, R1.x;",
            "TEMP a, b;",
            "PARAM p = {1, 2, 3, 4};",
            "END",
            "MAD R2, R0, R1, R2;",
            "FRC R3.xy, R2;",
            "!!ARBfp1.0",
        ];
        let src: String = pieces.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join("\n");
        if let Ok(program) = assemble(&src) {
            let input = FragmentInput::for_pixel(0, 0, 0.5, [0.0; 4]);
            let tex = Texture::from_data(1, 1, TextureFormat::Rgba,
                vec![1.0, 2.0, 3.0, 4.0]).unwrap();
            let textures: [Option<&Texture>; 1] = [Some(&tex)];
            let ctx = FragmentContext { textures: &textures, env: &[[0.5; 4]; 32] };
            let _ = execute(&program, &input, &ctx);
        }
    }
}
