//! Exact selectivity control.
//!
//! The paper fixes selectivities precisely ("To ensure 60% selectivity, we
//! set the valid range of values between the 20th percentile and 80th
//! percentile of the data values", §5.6). These helpers compute the
//! percentile thresholds that realize a target selectivity for each
//! predicate shape.

/// The value at percentile `p` (0.0–1.0) of `values` using the
/// nearest-rank definition on a sorted copy. `None` for an empty slice.
pub fn percentile(values: &[u32], p: f64) -> Option<u32> {
    if values.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    // Nearest-rank: ceil(p * n), 1-based; percentile 0 is the minimum.
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Threshold `c` such that the predicate `value >= c` has selectivity as
/// close as possible to `target` (fraction in 0..=1). Returns the constant
/// and the achieved selectivity.
pub fn threshold_for_ge(values: &[u32], target: f64) -> Option<(u32, f64)> {
    if values.is_empty() {
        return None;
    }
    // `value >= c` keeps the top `target` fraction: c is at percentile
    // (1 - target). Duplicates can shift the achieved selectivity; report
    // it so callers can assert tolerance.
    let c = percentile(values, 1.0 - target)?;
    let achieved = values.iter().filter(|&&v| v >= c).count() as f64 / values.len() as f64;
    Some((c, achieved))
}

/// Range `[low, high]` such that `low <= value <= high` has selectivity as
/// close as possible to `target`, centered (the paper's 20th–80th
/// percentile construction for 60%). Returns the bounds and the achieved
/// selectivity.
pub fn range_for_selectivity(values: &[u32], target: f64) -> Option<(u32, u32, f64)> {
    if values.is_empty() {
        return None;
    }
    let margin = (1.0 - target.clamp(0.0, 1.0)) / 2.0;
    let low = percentile(values, margin)?;
    let high = percentile(values, 1.0 - margin)?;
    let achieved =
        values.iter().filter(|&&v| v >= low && v <= high).count() as f64 / values.len() as f64;
    Some((low, high, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let values: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile(&values, 0.0), Some(1));
        assert_eq!(percentile(&values, 0.01), Some(1));
        assert_eq!(percentile(&values, 0.5), Some(50));
        assert_eq!(percentile(&values, 1.0), Some(100));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn ge_threshold_hits_target_on_distinct_values() {
        let values: Vec<u32> = (0..10_000).map(|i| i * 3 + 1).collect();
        let (c, achieved) = threshold_for_ge(&values, 0.6).unwrap();
        assert!((achieved - 0.6).abs() < 0.001, "achieved {achieved}");
        assert!(values.iter().filter(|&&v| v >= c).count() == 6_000 || achieved != 0.6);
    }

    #[test]
    fn range_matches_paper_construction() {
        // §5.6: 60% selectivity via [p20, p80].
        let values: Vec<u32> = (0..10_000).collect();
        let (low, high, achieved) = range_for_selectivity(&values, 0.6).unwrap();
        assert!((achieved - 0.6).abs() < 0.01, "achieved {achieved}");
        assert!(low < high);
        // Roughly the 20th and 80th percentiles.
        assert!((low as f64 - 2000.0).abs() < 50.0, "low {low}");
        assert!((high as f64 - 8000.0).abs() < 50.0, "high {high}");
    }

    #[test]
    fn heavy_duplicates_reported_honestly() {
        // With massive duplication the achievable selectivity is coarse;
        // the helper must report the true achieved fraction.
        let values = vec![5u32; 1000];
        let (c, achieved) = threshold_for_ge(&values, 0.6).unwrap();
        assert_eq!(c, 5);
        assert_eq!(achieved, 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(threshold_for_ge(&[], 0.5), None);
        assert_eq!(range_for_selectivity(&[], 0.5), None);
    }

    #[test]
    fn full_and_zero_selectivity_ranges() {
        let values: Vec<u32> = (0..1000).collect();
        let (_, _, achieved) = range_for_selectivity(&values, 1.0).unwrap();
        assert!(achieved > 0.99);
    }
}
