//! Random value distributions for synthetic workloads.
//!
//! The paper evaluates on a proprietary TCP/IP monitoring trace and a
//! census extract, neither of which is redistributable. These distribution
//! helpers generate synthetic columns with the statistical properties the
//! paper states (e.g. `data_count` "requires 19 bits to represent the
//! largest data value and has a high variance", §5.9), clamped to the
//! 24-bit range the GPU encoding requires.

use rand::Rng;

/// The largest attribute value the GPU data representation can hold
/// exactly (24-bit integers in f32 textures, §3.3).
pub const MAX_ATTRIBUTE: u32 = (1 << 24) - 1;

/// Uniform integer in `[0, 2^bits)`, clamped to the 24-bit domain.
pub fn uniform_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> u32 {
    let bits = bits.min(24);
    if bits == 0 {
        0
    } else {
        rng.gen_range(0..(1u32 << bits))
    }
}

/// Sample from a log-normal-shaped distribution (`exp(mu + sigma * z)` with
/// standard normal `z`), clamped to `[0, max]` — high-variance and
/// heavy-tailed, like packet/byte counts in network traces.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, max: u32) -> u32 {
    let z = standard_normal(rng);
    let v = (mu + sigma * z).exp();
    if v >= max as f64 {
        max
    } else {
        v as u32
    }
}

/// Sample from an exponential distribution with the given mean, clamped to
/// `[0, max]` — the classic model for inter-arrival-like counts.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64, max: u32) -> u32 {
    // Inverse CDF; guard against ln(0).
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let v = -mean * u.ln();
    if v >= max as f64 {
        max
    } else {
        v as u32
    }
}

/// A standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Zipf-distributed rank in `[0, n)` with exponent `s` (rejection-free
/// inverse-CDF over a precomputed table is overkill here; this uses the
/// standard approximate inversion adequate for workload skew).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Inverse-transform on the continuous approximation of the Zipf CDF.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    if (s - 1.0).abs() < 1e-9 {
        let h_n = (n as f64).ln();
        ((u * h_n).exp() - 1.0).min(n as f64 - 1.0) as usize
    } else {
        let p = 1.0 - s;
        let h_n = ((n as f64).powf(p) - 1.0) / p;
        (((u * h_n * p + 1.0).powf(1.0 / p)) - 1.0).min(n as f64 - 1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_bits_in_range() {
        let mut r = rng();
        for bits in [0u32, 1, 8, 19, 24, 30] {
            let effective = bits.min(24);
            for _ in 0..200 {
                let v = uniform_bits(&mut r, bits);
                assert!(effective == 0 || v < (1 << effective), "bits {bits} v {v}");
            }
        }
    }

    #[test]
    fn lognormal_clamped_and_skewed() {
        let mut r = rng();
        let samples: Vec<u32> = (0..20_000)
            .map(|_| lognormal(&mut r, 9.0, 1.5, MAX_ATTRIBUTE))
            .collect();
        assert!(samples.iter().all(|&v| v <= MAX_ATTRIBUTE));
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Right-skew: mean well above median.
        assert!(mean > 1.2 * median, "mean {mean}, median {median}");
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut r = rng();
        let mean_param = 1000.0;
        let samples: Vec<u32> = (0..50_000)
            .map(|_| exponential(&mut r, mean_param, MAX_ATTRIBUTE))
            .collect();
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean - mean_param).abs() < 0.05 * mean_param, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = rng();
        let n = 1000;
        let samples: Vec<usize> = (0..50_000).map(|_| zipf(&mut r, n, 1.2)).collect();
        assert!(samples.iter().all(|&v| v < n));
        let low_ranks = samples.iter().filter(|&&v| v < 10).count();
        // Heavy head: the first 1% of ranks receive far more than 1% of mass.
        assert!(
            low_ranks > samples.len() / 10,
            "low-rank share {low_ranks} of {}",
            samples.len()
        );
    }

    #[test]
    fn zipf_single_element() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(zipf(&mut r, 1, 1.5), 0);
        }
    }
}
