//! Synthetic TCP/IP monitoring trace.
//!
//! The paper's main benchmark database is "TCP/IP data for monitoring
//! traffic patterns in local area network and wide area network" with one
//! million records of four attributes:
//! `(data_count, data_loss, flow_rate, retransmissions)` (§5.1). The
//! original trace (courtesy of Jasleen Sahni, per the acknowledgements) is
//! not available; this generator synthesizes a trace with the properties
//! the paper reports:
//!
//! * `data_count` "requires 19 bits to represent the largest data value and
//!   has a high variance" (§5.9) — modeled as a log-normal byte count
//!   clamped to 19 bits;
//! * `data_loss` and `retransmissions` are small, bursty counts correlated
//!   with `data_count` — modeled as binomial-like fractions of it;
//! * `flow_rate` is a rate in a moderate range, weakly correlated with
//!   `data_count`.

use crate::dataset::{Column, Dataset};
use crate::distributions::{exponential, lognormal, standard_normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of records in the paper's TCP/IP database.
pub const PAPER_RECORD_COUNT: usize = 1_000_000;

/// Bit width of the paper's `data_count` attribute (§5.9).
pub const DATA_COUNT_BITS: u32 = 19;

/// Attribute names, in column order.
pub const ATTRIBUTES: [&str; 4] = ["data_count", "data_loss", "flow_rate", "retransmissions"];

/// Generate a synthetic TCP/IP trace with `records` records.
pub fn generate(records: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_count = (1u32 << DATA_COUNT_BITS) - 1;

    let mut data_count = Vec::with_capacity(records);
    let mut data_loss = Vec::with_capacity(records);
    let mut flow_rate = Vec::with_capacity(records);
    let mut retransmissions = Vec::with_capacity(records);

    for _ in 0..records {
        // Byte count: log-normal, high variance, 19-bit max.
        let count = lognormal(&mut rng, 10.2, 1.6, max_count);
        data_count.push(count);

        // Loss: usually zero, occasionally a small fraction of the count.
        let loss = if rng.gen_bool(0.35) {
            let frac: f64 = rng.gen_range(0.0..0.02);
            (count as f64 * frac) as u32
        } else {
            0
        };
        data_loss.push(loss.min(max_count));

        // Flow rate: exponential with a floor, weakly coupled to count.
        let base = exponential(&mut rng, 6_000.0, (1 << 16) - 1);
        let coupled = base as f64 * (1.0 + 0.1 * standard_normal(&mut rng)).clamp(0.5, 2.0)
            + (count as f64).sqrt();
        flow_rate.push((coupled as u32).min(max_count));

        // Retransmissions: proportional to loss plus noise.
        let retrans = loss / 2 + exponential(&mut rng, 1.5, 255);
        retransmissions.push(retrans.min(max_count));
    }

    Dataset::new(
        "tcpip",
        vec![
            Column::new(ATTRIBUTES[0], data_count),
            Column::new(ATTRIBUTES[1], data_loss),
            Column::new(ATTRIBUTES[2], flow_rate),
            Column::new(ATTRIBUTES[3], retransmissions),
        ],
    )
}

/// The paper-scale trace: one million records.
pub fn generate_paper_scale(seed: u64) -> Dataset {
    generate(PAPER_RECORD_COUNT, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let ds = generate(1000, 7);
        assert_eq!(ds.attribute_count(), 4);
        for (col, name) in ds.columns.iter().zip(ATTRIBUTES) {
            assert_eq!(col.name, name);
            assert_eq!(col.len(), 1000);
        }
    }

    #[test]
    fn data_count_uses_19_bits_with_high_variance() {
        let ds = generate(200_000, 11);
        let dc = &ds.column("data_count").unwrap().values;
        let bits = ds.column("data_count").unwrap().bits_required();
        assert_eq!(bits, DATA_COUNT_BITS, "largest value should need 19 bits");
        let mean = dc.iter().map(|&v| v as f64).sum::<f64>() / dc.len() as f64;
        let var = dc.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / dc.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.0, "coefficient of variation {cv} not high-variance");
    }

    #[test]
    fn values_fit_24_bits() {
        let ds = generate(50_000, 3);
        for col in &ds.columns {
            assert!(col.bits_required() <= 24, "{} too wide", col.name);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(generate(1000, 5), generate(1000, 5));
        assert_ne!(generate(1000, 5), generate(1000, 6));
    }

    #[test]
    fn loss_correlates_with_count() {
        let ds = generate(100_000, 13);
        let count = &ds.column("data_count").unwrap().values;
        let loss = &ds.column("data_loss").unwrap().values;
        // Pearson correlation should be clearly positive.
        let n = count.len() as f64;
        let mc = count.iter().map(|&v| v as f64).sum::<f64>() / n;
        let ml = loss.iter().map(|&v| v as f64).sum::<f64>() / n;
        let cov: f64 = count
            .iter()
            .zip(loss)
            .map(|(&c, &l)| (c as f64 - mc) * (l as f64 - ml))
            .sum::<f64>()
            / n;
        let sc = (count.iter().map(|&v| (v as f64 - mc).powi(2)).sum::<f64>() / n).sqrt();
        let sl = (loss.iter().map(|&v| (v as f64 - ml).powi(2)).sum::<f64>() / n).sqrt();
        let r = cov / (sc * sl);
        assert!(r > 0.2, "correlation {r} too weak");
    }

    #[test]
    fn zero_records() {
        let ds = generate(0, 1);
        assert_eq!(ds.record_count(), 0);
        assert_eq!(ds.attribute_count(), 4);
    }
}
