//! # gpudb-data — workload generators
//!
//! Synthetic stand-ins for the two databases the SIGMOD 2004 paper
//! benchmarks on (§5.1): a one-million-record TCP/IP monitoring trace and
//! a 360 K-record census extract. Neither original dataset is
//! redistributable, so the generators here reproduce the *stated*
//! statistical properties (attribute count, bit widths, variance, skew)
//! that the paper's algorithms are sensitive to — see `DESIGN.md` for the
//! substitution rationale.
//!
//! Also includes the percentile machinery used to pin predicate and range
//! selectivities at exactly the paper's 60 % / 80 % settings.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod census;
pub mod dataset;
pub mod distributions;
pub mod selectivity;
pub mod tcpip;

pub use dataset::{Column, Dataset};
