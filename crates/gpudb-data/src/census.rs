//! Synthetic census database.
//!
//! The paper's second benchmark is "a census database \[6\] consisting of
//! monthly income information" with 360 K records and four attributes used
//! per record (§5.1). The Census Bureau CPS extract is not bundled here;
//! this generator synthesizes a demographically-shaped table: log-normal
//! income, working-age distribution, weekly hours clustered at full-time,
//! and small household sizes.

use crate::dataset::{Column, Dataset};
use crate::distributions::{lognormal, standard_normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of records in the paper's census database.
pub const PAPER_RECORD_COUNT: usize = 360_000;

/// Attribute names, in column order.
pub const ATTRIBUTES: [&str; 4] = ["monthly_income", "age", "weekly_hours", "household_size"];

/// Generate a synthetic census table with `records` records.
pub fn generate(records: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut income = Vec::with_capacity(records);
    let mut age = Vec::with_capacity(records);
    let mut hours = Vec::with_capacity(records);
    let mut household = Vec::with_capacity(records);

    for _ in 0..records {
        // Monthly income in dollars: log-normal around ~3k, capped at the
        // 24-bit limit.
        income.push(lognormal(&mut rng, 8.0, 0.7, (1 << 24) - 1));

        // Age 16..=90, roughly normal around 42.
        let a = (42.0 + 14.0 * standard_normal(&mut rng)).clamp(16.0, 90.0);
        age.push(a as u32);

        // Weekly hours: mixture of full-time (40), part-time, and zero.
        let h = match rng.gen_range(0..10) {
            0..=5 => 40 + rng.gen_range(0..10),
            6..=7 => rng.gen_range(10..35),
            8 => 0,
            _ => rng.gen_range(45..80),
        };
        hours.push(h);

        // Household size 1..=8, geometric-ish.
        let mut size = 1u32;
        while size < 8 && rng.gen_bool(0.55) {
            size += 1;
        }
        household.push(size);
    }

    Dataset::new(
        "census",
        vec![
            Column::new(ATTRIBUTES[0], income),
            Column::new(ATTRIBUTES[1], age),
            Column::new(ATTRIBUTES[2], hours),
            Column::new(ATTRIBUTES[3], household),
        ],
    )
}

/// The paper-scale table: 360 K records.
pub fn generate_paper_scale(seed: u64) -> Dataset {
    generate(PAPER_RECORD_COUNT, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let ds = generate(500, 1);
        assert_eq!(ds.attribute_count(), 4);
        for (col, name) in ds.columns.iter().zip(ATTRIBUTES) {
            assert_eq!(col.name, name);
        }
    }

    #[test]
    fn ranges_are_plausible() {
        let ds = generate(50_000, 2);
        let age = &ds.column("age").unwrap().values;
        assert!(age.iter().all(|&a| (16..=90).contains(&a)));
        let hh = &ds.column("household_size").unwrap().values;
        assert!(hh.iter().all(|&h| (1..=8).contains(&h)));
        let hours = &ds.column("weekly_hours").unwrap().values;
        assert!(hours.iter().all(|&h| h < 80));
        // Full-time spike: at least a third work 40-49 hours.
        let fulltime = hours.iter().filter(|&&h| (40..50).contains(&h)).count();
        assert!(fulltime * 3 > hours.len());
    }

    #[test]
    fn income_right_skewed() {
        let ds = generate(50_000, 3);
        let inc = &ds.column("monthly_income").unwrap().values;
        let mean = inc.iter().map(|&v| v as f64).sum::<f64>() / inc.len() as f64;
        let mut sorted = inc.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > median, "income should be right-skewed");
        assert!(ds.column("monthly_income").unwrap().bits_required() <= 24);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(generate(100, 9), generate(100, 9));
    }
}
