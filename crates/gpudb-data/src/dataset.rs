//! Columnar dataset container shared by all generators.

use serde::{Deserialize, Serialize};

/// A named attribute column of unsigned integers (≤ 24 bits per value, the
/// GPU texture encoding limit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Attribute name.
    pub name: String,
    /// Per-record values.
    pub values: Vec<u32>,
}

impl Column {
    /// Construct a column.
    pub fn new(name: impl Into<String>, values: Vec<u32>) -> Column {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum number of bits needed to represent the largest value (the
    /// `b_max` of the paper's bitwise algorithms); 0 for an all-zero or
    /// empty column.
    pub fn bits_required(&self) -> u32 {
        self.values
            .iter()
            .copied()
            .max()
            .map_or(0, |max| 32 - max.leading_zeros())
    }
}

/// A relational table in columnar (structure-of-arrays) form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Attribute columns, all of equal length.
    pub columns: Vec<Column>,
}

impl Dataset {
    /// Construct a dataset, validating that all columns have equal length.
    ///
    /// # Panics
    /// Panics if column lengths differ.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Dataset {
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "all columns must have equal length"
            );
        }
        Dataset {
            name: name.into(),
            columns,
        }
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Borrow all columns as slices, in declaration order (the shape the
    /// CPU baselines take).
    pub fn column_slices(&self) -> Vec<&[u32]> {
        self.columns.iter().map(|c| c.values.as_slice()).collect()
    }

    /// Truncate every column to the first `n` records (no-op if `n` is
    /// larger than the dataset). Used for record-count sweeps.
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            name: format!("{}[..{}]", self.name, n.min(self.record_count())),
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.values[..n.min(c.len())].to_vec()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_bits_required() {
        assert_eq!(Column::new("a", vec![]).bits_required(), 0);
        assert_eq!(Column::new("a", vec![0]).bits_required(), 0);
        assert_eq!(Column::new("a", vec![1]).bits_required(), 1);
        assert_eq!(Column::new("a", vec![255]).bits_required(), 8);
        assert_eq!(Column::new("a", vec![256]).bits_required(), 9);
        assert_eq!(Column::new("a", vec![(1 << 19) - 1]).bits_required(), 19);
    }

    #[test]
    fn dataset_accessors() {
        let ds = Dataset::new(
            "t",
            vec![
                Column::new("x", vec![1, 2, 3]),
                Column::new("y", vec![4, 5, 6]),
            ],
        );
        assert_eq!(ds.record_count(), 3);
        assert_eq!(ds.attribute_count(), 2);
        assert_eq!(ds.column("y").unwrap().values, vec![4, 5, 6]);
        assert!(ds.column("z").is_none());
        assert_eq!(ds.column_slices()[0], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_columns_rejected() {
        Dataset::new(
            "t",
            vec![Column::new("x", vec![1]), Column::new("y", vec![1, 2])],
        );
    }

    #[test]
    fn truncation() {
        let ds = Dataset::new("t", vec![Column::new("x", (0..100).collect())]);
        let t = ds.truncated(10);
        assert_eq!(t.record_count(), 10);
        assert_eq!(t.columns[0].values, (0..10).collect::<Vec<u32>>());
        // Oversized truncation is a no-op.
        assert_eq!(ds.truncated(1000).record_count(), 100);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("empty", vec![]);
        assert_eq!(ds.record_count(), 0);
        assert_eq!(ds.attribute_count(), 0);
    }
}
