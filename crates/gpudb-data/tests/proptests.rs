//! Property-based tests for the workload generators and selectivity
//! machinery.

use gpudb_data::distributions::{exponential, lognormal, uniform_bits, zipf, MAX_ATTRIBUTE};
use gpudb_data::selectivity::{percentile, range_for_selectivity, threshold_for_ge};
use gpudb_data::{census, tcpip};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_is_nearest_rank(
        values in prop::collection::vec(any::<u32>(), 1..300),
        p in 0.0f64..=1.0,
    ) {
        let v = percentile(&values, p).unwrap();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(v, sorted[rank - 1]);
    }

    #[test]
    fn ge_threshold_reports_true_selectivity(
        values in prop::collection::vec(any::<u32>(), 1..300),
        target in 0.05f64..0.95,
    ) {
        let (c, achieved) = threshold_for_ge(&values, target).unwrap();
        let actual = values.iter().filter(|&&v| v >= c).count() as f64 / values.len() as f64;
        prop_assert!((achieved - actual).abs() < 1e-12);
        // On distinct values the achieved selectivity is within one rank.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() == values.len() {
            prop_assert!(
                (achieved - target).abs() <= 1.0 / values.len() as f64 + 1e-9,
                "achieved {} target {}",
                achieved,
                target
            );
        }
    }

    #[test]
    fn range_selectivity_reports_true_fraction(
        values in prop::collection::vec(any::<u32>(), 1..300),
        target in 0.1f64..0.9,
    ) {
        let (low, high, achieved) = range_for_selectivity(&values, target).unwrap();
        prop_assert!(low <= high);
        let actual = values
            .iter()
            .filter(|&&v| v >= low && v <= high)
            .count() as f64
            / values.len() as f64;
        prop_assert!((achieved - actual).abs() < 1e-12);
    }

    #[test]
    fn distributions_respect_bounds(seed in any::<u64>(), bits in 0u32..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = uniform_bits(&mut rng, bits);
        let eff = bits.min(24);
        prop_assert!(eff == 0 && v == 0 || v < (1 << eff));
        prop_assert!(lognormal(&mut rng, 8.0, 2.0, MAX_ATTRIBUTE) <= MAX_ATTRIBUTE);
        prop_assert!(exponential(&mut rng, 1e6, MAX_ATTRIBUTE) <= MAX_ATTRIBUTE);
        let z = zipf(&mut rng, 100, 1.1);
        prop_assert!(z < 100);
    }

    #[test]
    fn generators_deterministic_and_bounded(records in 0usize..2000, seed in any::<u64>()) {
        let a = tcpip::generate(records, seed);
        let b = tcpip::generate(records, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.record_count(), records);
        for col in &a.columns {
            prop_assert!(col.bits_required() <= 24, "{} too wide", col.name);
        }

        let c = census::generate(records.min(500), seed);
        prop_assert_eq!(c.attribute_count(), 4);
        for col in &c.columns {
            prop_assert!(col.bits_required() <= 24);
        }
    }

    #[test]
    fn truncation_is_prefix(records in 1usize..500, keep in 0usize..600, seed in any::<u64>()) {
        let ds = tcpip::generate(records, seed);
        let t = ds.truncated(keep);
        let expected = keep.min(records);
        prop_assert_eq!(t.record_count(), expected);
        for (full, cut) in ds.columns.iter().zip(&t.columns) {
            prop_assert_eq!(&full.values[..expected], &cut.values[..]);
        }
    }
}
