//! Property-based tests for the CPU baselines.

use gpudb_cpu::bitmap::Bitmap;
use gpudb_cpu::cnf::{eval_cnf, eval_range, Clause, Cnf, Predicate};
use gpudb_cpu::parallel::{par_count_u32, par_scan_u32};
use gpudb_cpu::quickselect::{kth_largest, kth_smallest, median};
use gpudb_cpu::scan::{count_u32, scan_u32, CmpOp};
use gpudb_cpu::{aggregate, semilinear};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(CmpOp::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_matches_filter(
        values in prop::collection::vec(any::<u32>(), 0..300),
        op in op_strategy(),
        constant in any::<u32>(),
    ) {
        let bm = scan_u32(&values, op, constant);
        prop_assert_eq!(bm.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(bm.get(i), op.eval(v, constant));
        }
        prop_assert_eq!(bm.count_ones(), count_u32(&values, op, constant));
    }

    #[test]
    fn parallel_scan_equals_sequential(
        values in prop::collection::vec(any::<u32>(), 0..50_000),
        op in op_strategy(),
        constant in any::<u32>(),
        threads in 1usize..8,
    ) {
        prop_assert_eq!(
            par_scan_u32(&values, op, constant, threads),
            scan_u32(&values, op, constant)
        );
        prop_assert_eq!(
            par_count_u32(&values, op, constant, threads),
            count_u32(&values, op, constant)
        );
    }

    #[test]
    fn bitmap_boolean_algebra(
        bits_a in prop::collection::vec(any::<bool>(), 1..300),
        bits_b in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let n = bits_a.len().min(bits_b.len());
        let a = Bitmap::from_fn(n, |i| bits_a[i]);
        let b = Bitmap::from_fn(n, |i| bits_b[i]);

        // De Morgan: !(a & b) == !a | !b
        let mut lhs = a.clone();
        lhs.and_assign(&b);
        lhs.not_assign();
        let mut rhs_a = a.clone();
        rhs_a.not_assign();
        let mut rhs_b = b.clone();
        rhs_b.not_assign();
        rhs_a.or_assign(&rhs_b);
        prop_assert_eq!(&lhs, &rhs_a);

        // XOR == (a | b) & !(a & b)
        let mut x = a.clone();
        x.xor_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        let mut nand = a.clone();
        nand.and_assign(&b);
        nand.not_assign();
        or.and_assign(&nand);
        prop_assert_eq!(&x, &or);

        // Complement count.
        let mut not_a = a.clone();
        not_a.not_assign();
        prop_assert_eq!(a.count_ones() + not_a.count_ones(), n);

        // iter_ones agrees with get.
        let ones: Vec<usize> = a.iter_ones().collect();
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(ones.len(), a.count_ones());
        for i in ones {
            prop_assert!(a.get(i));
        }
    }

    #[test]
    fn quickselect_matches_sort(
        values in prop::collection::vec(any::<u32>(), 1..500),
        k_seed in 0usize..10_000,
    ) {
        let k = 1 + k_seed % values.len();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(kth_largest(&values, k), Some(sorted[sorted.len() - k]));
        prop_assert_eq!(kth_smallest(&values, k), Some(sorted[k - 1]));
        prop_assert_eq!(median(&values), Some(sorted[values.len().div_ceil(2) - 1]));
    }

    #[test]
    fn masked_aggregates_match_filtered(
        pairs in prop::collection::vec((any::<u32>(), any::<bool>()), 0..300),
    ) {
        let values: Vec<u32> = pairs.iter().map(|&(v, _)| v).collect();
        let mask = Bitmap::from_fn(values.len(), |i| pairs[i].1);
        let selected: Vec<u32> = pairs.iter().filter(|&&(_, m)| m).map(|&(v, _)| v).collect();

        let expected_sum: u64 = selected.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(aggregate::sum_masked(&values, &mask), expected_sum);
        prop_assert_eq!(aggregate::min_masked(&values, &mask), selected.iter().copied().min());
        prop_assert_eq!(aggregate::max_masked(&values, &mask), selected.iter().copied().max());
        prop_assert_eq!(aggregate::extract_masked(&values, &mask), selected);
    }

    #[test]
    fn sum_matches_u64_reference(values in prop::collection::vec(any::<u32>(), 0..1000)) {
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(aggregate::sum(&values), expected);
    }

    #[test]
    fn cnf_matches_row_eval(
        col_a in prop::collection::vec(0u32..100, 20..60),
        clause_spec in prop::collection::vec(
            prop::collection::vec((0usize..6, 0u32..100), 1..3), 0..4),
    ) {
        let cols: Vec<&[u32]> = vec![&col_a];
        let cnf = Cnf::new(
            clause_spec
                .iter()
                .map(|clause| Clause::any(
                    clause.iter().map(|&(op_idx, c)| Predicate::new(0, CmpOp::ALL[op_idx], c)).collect(),
                ))
                .collect(),
        );
        let bm = eval_cnf(&cols, &cnf);
        for i in 0..col_a.len() {
            prop_assert_eq!(bm.get(i), cnf.eval_row(&cols, i), "row {}", i);
        }
    }

    #[test]
    fn range_is_conjunction(
        values in prop::collection::vec(any::<u32>(), 0..300),
        bounds in (any::<u32>(), any::<u32>()),
    ) {
        let (low, high) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let range = eval_range(&values, low, high);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(range.get(i), v >= low && v <= high);
        }
    }

    #[test]
    fn semilinear_count_matches_scan(
        cols in prop::collection::vec((0u32..1000, 0u32..1000), 1..200),
        s in (-4.0f32..4.0, -4.0f32..4.0),
        op in op_strategy(),
        b in -5000.0f32..5000.0,
    ) {
        let a: Vec<u32> = cols.iter().map(|&(x, _)| x).collect();
        let c: Vec<u32> = cols.iter().map(|&(_, y)| y).collect();
        let refs: Vec<&[u32]> = vec![&a, &c];
        let coeffs = [s.0, s.1];
        let bm = semilinear::semilinear_scan(&refs, &coeffs, op, b);
        prop_assert_eq!(
            bm.count_ones(),
            semilinear::semilinear_count(&refs, &coeffs, op, b)
        );
        for i in 0..a.len() {
            let dot = semilinear::dot_f32(&refs, &coeffs, i);
            prop_assert_eq!(bm.get(i), op.eval(dot, b));
        }
    }
}
