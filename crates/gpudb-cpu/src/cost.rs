//! Cost model for the paper's CPU baseline platform: dual 2.8 GHz Intel
//! Xeon processors with 4-wide SSE2 SIMD (§5).
//!
//! Absolute 2004 timings cannot be measured on today's hardware, so — like
//! the GPU cost model in `gpudb-sim` — this model converts counted work
//! into modeled seconds. The throughput constants are calibrated against
//! the paper's own reported ratios (see `EXPERIMENTS.md`):
//!
//! * predicate scan: the GPU's compute-only predicate pass (0.278 ms /
//!   million records) is reported "nearly 20 times faster than a
//!   compiler-optimized SIMD implementation" (Fig. 3) → CPU scan ≈ 5.6 ms
//!   per million records (≈ 180 M records/s);
//! * range scan: "nearly 40 times faster" compute-only (Fig. 4) → ≈ 11 ms
//!   per million, i.e. the two-comparison scan runs at half the
//!   single-predicate rate;
//! * semi-linear query: "9 times faster" than the GPU's ≈ 2.3 ms pass
//!   (Fig. 6) → ≈ 21 ms per million 4-attribute records;
//! * SUM: the GPU accumulator is "nearly 20 times slower" (Fig. 10), with
//!   the GPU taking ≈ 44 ms per million 20-bit values → CPU SUM ≈ 2.2 ms
//!   per million (≈ 450 M records/s, memory-bandwidth bound);
//! * QuickSelect: Figures 7–8 put the GPU at ≈ 2× faster overall and
//!   ≈ 3× compute-only. A per-visited-element cost of ≈ 28 cycles
//!   (compare + data movement, ~50 % mispredicted branches at the
//!   17-cycle penalty of §6.2.1, plus out-of-cache partition traffic at
//!   2004 memory latencies) lands both figures inside the paper's bands
//!   with our measured 1.5–3.1 visits per element.

use crate::quickselect::SelectStats;
use serde::{Deserialize, Serialize};

/// Throughput/latency parameters of a modeled CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Human-readable platform name.
    pub name: String,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Predicate scan throughput, records per second.
    pub scan_records_per_sec: f64,
    /// Range (two-comparison) scan throughput, records per second.
    pub range_records_per_sec: f64,
    /// Semi-linear (4-wide dot + compare) throughput, records per second.
    pub semilinear_records_per_sec: f64,
    /// SUM throughput, records per second.
    pub sum_records_per_sec: f64,
    /// Word-parallel bitmap combine throughput, records per second.
    pub bitmap_records_per_sec: f64,
    /// Cycles charged per element visit in branchy selection code
    /// (QuickSelect), including the expected branch-miss penalty.
    pub select_cycles_per_visit: f64,
    /// Throughput of the subset-extraction copy (records per second) the
    /// CPU pays before selecting over a masked subset (§5.9 Test 3).
    pub extract_records_per_sec: f64,
}

impl CpuCostModel {
    /// The paper's platform: dual 2.8 GHz Xeons, Intel compiler 7.1 with
    /// vectorization, multithreading and IPO (§5.2).
    pub fn xeon_2004() -> CpuCostModel {
        CpuCostModel {
            name: "dual Intel Xeon 2.8 GHz (modeled, 2004)".to_string(),
            clock_hz: 2.8e9,
            scan_records_per_sec: 180e6,
            range_records_per_sec: 90e6,
            semilinear_records_per_sec: 48e6,
            sum_records_per_sec: 450e6,
            bitmap_records_per_sec: 2.8e9,
            select_cycles_per_visit: 28.0,
            extract_records_per_sec: 300e6,
        }
    }

    /// Modeled seconds for a single-predicate scan over `n` records.
    pub fn scan_seconds(&self, n: usize) -> f64 {
        n as f64 / self.scan_records_per_sec
    }

    /// Modeled seconds for a range scan over `n` records.
    pub fn range_seconds(&self, n: usize) -> f64 {
        n as f64 / self.range_records_per_sec
    }

    /// Modeled seconds for a semi-linear scan over `n` records with `m`
    /// attributes (calibrated at m = 4; other widths scale linearly).
    pub fn semilinear_seconds(&self, n: usize, m: usize) -> f64 {
        n as f64 * (m as f64 / 4.0) / self.semilinear_records_per_sec
    }

    /// Modeled seconds for a multi-attribute CNF: one scan per simple
    /// predicate plus a word-parallel combine per clause.
    pub fn cnf_seconds(&self, n: usize, predicates: usize, clauses: usize) -> f64 {
        predicates as f64 * self.scan_seconds(n)
            + clauses as f64 * n as f64 / self.bitmap_records_per_sec
    }

    /// Modeled seconds to SUM `n` records.
    pub fn sum_seconds(&self, n: usize) -> f64 {
        n as f64 / self.sum_records_per_sec
    }

    /// Modeled seconds for a QuickSelect run, priced from its instrumented
    /// work counters.
    pub fn select_seconds(&self, stats: &SelectStats) -> f64 {
        stats.visits as f64 * self.select_cycles_per_visit / self.clock_hz
    }

    /// Modeled seconds to extract `n` selected records into a dense array.
    pub fn extract_seconds(&self, n: usize) -> f64 {
        n as f64 / self.extract_records_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_scan_vs_paper_figure3() {
        // GPU compute-only predicate: 0.278 ms per million. Paper: CPU is
        // ~20x slower.
        let cpu = CpuCostModel::xeon_2004();
        let ratio = cpu.scan_seconds(1_000_000) / 0.278e-3;
        assert!((15.0..25.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn calibration_range_vs_paper_figure4() {
        let cpu = CpuCostModel::xeon_2004();
        let ratio = cpu.range_seconds(1_000_000) / 0.278e-3;
        assert!((35.0..45.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn calibration_sum_vs_paper_figure10() {
        // GPU accumulator on 1M values, 20 bit-planes: each pass shades
        // every fragment with the 7-cycle TestBit program.
        let cpu = CpuCostModel::xeon_2004();
        let gpu_pass = 1_000_000.0 * 7.0 / (8.0 * 450e6);
        let gpu_total = 20.0 * (gpu_pass + 0.07e-3);
        let ratio = gpu_total / cpu.sum_seconds(1_000_000);
        assert!((10.0..30.0).contains(&ratio), "GPU/CPU SUM ratio {ratio}");
    }

    #[test]
    fn range_costs_about_twice_a_scan() {
        let cpu = CpuCostModel::xeon_2004();
        let r = cpu.range_seconds(1000) / cpu.scan_seconds(1000);
        assert!((1.8..2.2).contains(&r));
    }

    #[test]
    fn cnf_scales_with_predicates() {
        let cpu = CpuCostModel::xeon_2004();
        let one = cpu.cnf_seconds(1_000_000, 1, 1);
        let four = cpu.cnf_seconds(1_000_000, 4, 4);
        assert!(four > 3.5 * one && four < 4.5 * one);
    }

    #[test]
    fn select_priced_from_visits() {
        let cpu = CpuCostModel::xeon_2004();
        let stats = SelectStats {
            visits: 2_800_000,
            partitions: 10,
            swaps: 100,
        };
        // 2.8M visits × 28 cycles at 2.8 GHz = 28 ms.
        assert!((cpu.select_seconds(&stats) - 28e-3).abs() < 1e-9);
    }

    #[test]
    fn semilinear_scales_with_attribute_count() {
        let cpu = CpuCostModel::xeon_2004();
        assert!(
            (cpu.semilinear_seconds(1000, 8) / cpu.semilinear_seconds(1000, 4) - 2.0).abs() < 1e-9
        );
    }
}
