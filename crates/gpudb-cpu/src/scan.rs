//! Branch-free predicate scans — the "compiler-optimized SIMD
//! implementation" baseline of the paper's §5.2.
//!
//! Each scan walks a column once and materializes a [`Bitmap`], building 64
//! results at a time with data-independent control flow so the compiler can
//! vectorize the comparison loop and the branch predictor never sees a
//! data-dependent branch (the stall source §1 highlights).

use crate::bitmap::Bitmap;
use serde::{Deserialize, Serialize};

/// Comparison operator for CPU-side predicates (`attribute op constant`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluate `a op b`.
    #[inline(always)]
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The logical complement (`a op b == !(a op.negate() b)`), used for
    /// NOT-elimination.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// All operators, for exhaustive tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];
}

/// Scan a `u32` column for `value op constant`, branch-free.
pub fn scan_u32(values: &[u32], op: CmpOp, constant: u32) -> Bitmap {
    match op {
        CmpOp::Lt => scan_with(values, |v| v < constant),
        CmpOp::Le => scan_with(values, |v| v <= constant),
        CmpOp::Gt => scan_with(values, |v| v > constant),
        CmpOp::Ge => scan_with(values, |v| v >= constant),
        CmpOp::Eq => scan_with(values, |v| v == constant),
        CmpOp::Ne => scan_with(values, |v| v != constant),
    }
}

/// Scan an `f32` column for `value op constant`, branch-free.
pub fn scan_f32(values: &[f32], op: CmpOp, constant: f32) -> Bitmap {
    match op {
        CmpOp::Lt => scan_f32_with(values, |v| v < constant),
        CmpOp::Le => scan_f32_with(values, |v| v <= constant),
        CmpOp::Gt => scan_f32_with(values, |v| v > constant),
        CmpOp::Ge => scan_f32_with(values, |v| v >= constant),
        CmpOp::Eq => scan_f32_with(values, |v| v == constant),
        CmpOp::Ne => scan_f32_with(values, |v| v != constant),
    }
}

/// Count matches without materializing a bitmap (the pure-aggregation
/// variant of a selection, comparable to the GPU's occlusion-query COUNT).
pub fn count_u32(values: &[u32], op: CmpOp, constant: u32) -> usize {
    match op {
        CmpOp::Lt => values.iter().filter(|&&v| v < constant).count(),
        CmpOp::Le => values.iter().filter(|&&v| v <= constant).count(),
        CmpOp::Gt => values.iter().filter(|&&v| v > constant).count(),
        CmpOp::Ge => values.iter().filter(|&&v| v >= constant).count(),
        CmpOp::Eq => values.iter().filter(|&&v| v == constant).count(),
        CmpOp::Ne => values.iter().filter(|&&v| v != constant).count(),
    }
}

#[inline]
fn scan_with(values: &[u32], pred: impl Fn(u32) -> bool) -> Bitmap {
    let mut bm = Bitmap::zeros(values.len());
    scan_into(values.len(), |i| pred(values[i]), &mut bm);
    bm
}

#[inline]
fn scan_f32_with(values: &[f32], pred: impl Fn(f32) -> bool) -> Bitmap {
    let mut bm = Bitmap::zeros(values.len());
    scan_into(values.len(), |i| pred(values[i]), &mut bm);
    bm
}

/// Build a bitmap word-at-a-time: 64 branch-free comparisons are OR-folded
/// into one `u64` before a single store.
#[inline]
fn scan_into(len: usize, pred: impl Fn(usize) -> bool, out: &mut Bitmap) {
    let full_words = len / 64;
    for w in 0..full_words {
        let base = w * 64;
        let mut word = 0u64;
        for bit in 0..64 {
            word |= (pred(base + bit) as u64) << bit;
        }
        // Safe: Bitmap::set would be bit-by-bit; write whole words directly
        // through the public API by setting each bit — but that defeats the
        // point, so Bitmap exposes set_word for scans.
        out.set_word(w, word);
    }
    for i in full_words * 64..len {
        out.set(i, pred(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval_and_negate() {
        for op in CmpOp::ALL {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
                }
            }
        }
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
    }

    #[test]
    fn scan_matches_reference_all_ops() {
        let values: Vec<u32> = (0..300).map(|i| (i * 7919) % 100).collect();
        for op in CmpOp::ALL {
            for c in [0u32, 1, 50, 99, 100] {
                let bm = scan_u32(&values, op, c);
                for (i, &v) in values.iter().enumerate() {
                    assert_eq!(bm.get(i), op.eval(v, c), "op {op:?} c {c} i {i}");
                }
                assert_eq!(bm.count_ones(), count_u32(&values, op, c));
            }
        }
    }

    #[test]
    fn scan_f32_matches_reference() {
        let values: Vec<f32> = (0..130).map(|i| (i as f32) * 0.37 - 10.0).collect();
        for op in CmpOp::ALL {
            let bm = scan_f32(&values, op, 5.0);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(bm.get(i), op.eval(v, 5.0), "op {op:?} i {i}");
            }
        }
    }

    #[test]
    fn scan_handles_non_word_lengths() {
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            let values: Vec<u32> = (0..len as u32).collect();
            let bm = scan_u32(&values, CmpOp::Ge, len as u32 / 2);
            assert_eq!(bm.count_ones(), len - len / 2, "len {len}");
        }
    }

    #[test]
    fn scan_empty() {
        let bm = scan_u32(&[], CmpOp::Lt, 10);
        assert!(bm.is_empty());
    }
}
