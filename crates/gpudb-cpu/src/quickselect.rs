//! `QuickSelect` — Hoare's FIND (the paper's reference \[14\]), the CPU
//! baseline for `KthLargest` in Figures 7–9.
//!
//! The implementation is instrumented: it counts element visits and
//! partition passes so the 2004 Xeon cost model can price the branchy,
//! data-dependent control flow that the paper contrasts with the GPU's
//! branch-free bit-descent ("these algorithms ... may lead to branch
//! mispredictions on the CPU", §4.3.2).

use serde::{Deserialize, Serialize};

/// Work counters from a selection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectStats {
    /// Total elements examined across all partition passes.
    pub visits: u64,
    /// Number of partition passes.
    pub partitions: u64,
    /// Number of element swaps performed.
    pub swaps: u64,
}

/// Find the k-th largest value (1-based: `k = 1` is the maximum) using
/// in-place Hoare partitioning on `data`, which is reordered.
///
/// Returns `None` when `k` is 0 or exceeds `data.len()`.
pub fn kth_largest_in_place(data: &mut [u32], k: usize) -> (Option<u32>, SelectStats) {
    let mut stats = SelectStats::default();
    if k == 0 || k > data.len() {
        return (None, stats);
    }
    // k-th largest == element at index (len - k) in ascending order.
    let target = data.len() - k;
    let mut lo = 0usize;
    let mut hi = data.len() - 1;
    loop {
        if lo == hi {
            return (Some(data[lo]), stats);
        }
        let pivot = median_of_three(data[lo], data[lo + (hi - lo) / 2], data[hi]);
        let (mut i, mut j) = (lo, hi);
        stats.partitions += 1;
        // Hoare partition.
        loop {
            while data[i] < pivot {
                i += 1;
                stats.visits += 1;
            }
            stats.visits += 1;
            while data[j] > pivot {
                j -= 1;
                stats.visits += 1;
            }
            stats.visits += 1;
            if i >= j {
                break;
            }
            data.swap(i, j);
            stats.swaps += 1;
            i += 1;
            j = j.saturating_sub(1);
        }
        if target <= j {
            hi = j;
        } else {
            lo = j + 1;
        }
    }
}

/// Find the k-th largest value on a scratch copy, leaving the input
/// untouched — the usage shape of the paper's experiments, where the CPU
/// baseline also pays for the copy when operating on selected subsets
/// (§5.9, Test 3).
pub fn kth_largest(data: &[u32], k: usize) -> Option<u32> {
    let mut scratch = data.to_vec();
    kth_largest_in_place(&mut scratch, k).0
}

/// Instrumented variant of [`kth_largest`].
pub fn kth_largest_instrumented(data: &[u32], k: usize) -> (Option<u32>, SelectStats) {
    let mut scratch = data.to_vec();
    kth_largest_in_place(&mut scratch, k)
}

/// The k-th *smallest* value (1-based).
pub fn kth_smallest(data: &[u32], k: usize) -> Option<u32> {
    if k == 0 || k > data.len() {
        return None;
    }
    kth_largest(data, data.len() + 1 - k)
}

/// The median: the ⌈n/2⌉-th smallest value (lower median).
pub fn median(data: &[u32]) -> Option<u32> {
    if data.is_empty() {
        return None;
    }
    kth_smallest(data, data.len().div_ceil(2))
}

#[inline(always)]
fn median_of_three(a: u32, b: u32, c: u32) -> u32 {
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_kth_largest(data: &[u32], k: usize) -> Option<u32> {
        if k == 0 || k > data.len() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        Some(sorted[sorted.len() - k])
    }

    #[test]
    fn median_of_three_is_median() {
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let mut v = [a, b, c];
                    v.sort_unstable();
                    assert_eq!(median_of_three(a, b, c), v[1], "{a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn kth_largest_matches_sort_reference() {
        let data: Vec<u32> = (0..500)
            .map(|i: u32| i.wrapping_mul(2654435761) % 1000)
            .collect();
        for k in [1, 2, 5, 100, 250, 499, 500] {
            assert_eq!(
                kth_largest(&data, k),
                reference_kth_largest(&data, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn out_of_range_k() {
        let data = vec![5u32, 3, 8];
        assert_eq!(kth_largest(&data, 0), None);
        assert_eq!(kth_largest(&data, 4), None);
        assert_eq!(kth_largest(&[], 1), None);
    }

    #[test]
    fn handles_duplicates() {
        let data = vec![7u32; 100];
        assert_eq!(kth_largest(&data, 1), Some(7));
        assert_eq!(kth_largest(&data, 50), Some(7));
        assert_eq!(kth_largest(&data, 100), Some(7));

        let data = vec![1u32, 2, 2, 2, 3];
        assert_eq!(kth_largest(&data, 1), Some(3));
        assert_eq!(kth_largest(&data, 2), Some(2));
        assert_eq!(kth_largest(&data, 4), Some(2));
        assert_eq!(kth_largest(&data, 5), Some(1));
    }

    #[test]
    fn sorted_and_reverse_sorted_inputs() {
        let asc: Vec<u32> = (0..1000).collect();
        let desc: Vec<u32> = (0..1000).rev().collect();
        for k in [1, 10, 500, 1000] {
            assert_eq!(kth_largest(&asc, k), Some(1000 - k as u32));
            assert_eq!(kth_largest(&desc, k), Some(1000 - k as u32));
        }
    }

    #[test]
    fn kth_smallest_and_median() {
        let data = vec![9u32, 1, 8, 2, 7, 3, 6, 4, 5];
        assert_eq!(kth_smallest(&data, 1), Some(1));
        assert_eq!(kth_smallest(&data, 9), Some(9));
        assert_eq!(median(&data), Some(5));
        // Even length: lower median.
        let data = vec![4u32, 1, 3, 2];
        assert_eq!(median(&data), Some(2));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn input_not_modified_by_copy_variant() {
        let data = vec![3u32, 1, 2];
        let _ = kth_largest(&data, 2);
        assert_eq!(data, vec![3, 1, 2]);
    }

    #[test]
    fn stats_report_linear_work() {
        let data: Vec<u32> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();
        let (value, stats) = kth_largest_instrumented(&data, 50_000);
        assert_eq!(value, reference_kth_largest(&data, 50_000));
        assert!(stats.partitions > 0);
        // Expected linear-time behavior: visits within a small multiple of n.
        assert!(
            stats.visits < 12 * data.len() as u64,
            "visits {} look superlinear",
            stats.visits
        );
        assert!(stats.visits >= data.len() as u64);
    }

    #[test]
    fn single_element() {
        assert_eq!(kth_largest(&[42], 1), Some(42));
        assert_eq!(median(&[42]), Some(42));
    }
}
