//! CPU baseline for semi-linear queries: `dot(s, a) op b` per record
//! (§4.1.2 of the paper).
//!
//! The dot product is computed in `f32`, matching the GPU's fragment
//! processors exactly, so the CPU baseline and the GPU implementation agree
//! bit-for-bit on boundary cases and tests can compare their selections
//! directly.

use crate::bitmap::Bitmap;
use crate::scan::CmpOp;

/// Evaluate `sum_j s[j] * columns[j][i]  op  b` for every record `i`.
///
/// `columns` are the attribute columns (structure-of-arrays); `s` must have
/// the same length as `columns`. Panics if lengths are inconsistent.
pub fn semilinear_scan(columns: &[&[u32]], s: &[f32], op: CmpOp, b: f32) -> Bitmap {
    assert_eq!(
        columns.len(),
        s.len(),
        "coefficient count must match column count"
    );
    let len = columns.first().map_or(0, |c| c.len());
    assert!(
        columns.iter().all(|c| c.len() == len),
        "columns must have equal length"
    );
    Bitmap::from_fn(len, |i| op.eval(dot_f32(columns, s, i), b))
}

/// Count records satisfying the semi-linear predicate without materializing
/// the selection.
pub fn semilinear_count(columns: &[&[u32]], s: &[f32], op: CmpOp, b: f32) -> usize {
    assert_eq!(columns.len(), s.len());
    let len = columns.first().map_or(0, |c| c.len());
    (0..len)
        .filter(|&i| op.eval(dot_f32(columns, s, i), b))
        .count()
}

/// The f32 dot product for one record, in the same accumulation order the
/// GPU's `DP4` uses (pairwise left-to-right).
#[inline(always)]
pub fn dot_f32(columns: &[&[u32]], s: &[f32], row: usize) -> f32 {
    let mut acc = 0.0f32;
    for (col, &coeff) in columns.iter().zip(s) {
        acc += coeff * col[row] as f32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_columns() -> Vec<Vec<u32>> {
        (0..4)
            .map(|c| (0..100u32).map(|i| (i * (c + 3) + c * 17) % 50).collect())
            .collect()
    }

    #[test]
    fn matches_rowwise_reference() {
        let cols = make_columns();
        let refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
        let s = [0.5f32, -1.25, 2.0, 0.75];
        for op in CmpOp::ALL {
            let bm = semilinear_scan(&refs, &s, op, 10.0);
            for i in 0..100 {
                let dot: f32 = s.iter().zip(&cols).map(|(&c, col)| c * col[i] as f32).sum();
                assert_eq!(bm.get(i), op.eval(dot, 10.0), "op {op:?} row {i}");
            }
            assert_eq!(bm.count_ones(), semilinear_count(&refs, &s, op, 10.0));
        }
    }

    #[test]
    fn attribute_comparison_as_semilinear() {
        // a_i op a_j rewritten as a_i - a_j op 0 (§4.1.2).
        let a: Vec<u32> = vec![5, 10, 15, 20];
        let b: Vec<u32> = vec![7, 10, 12, 25];
        let bm = semilinear_scan(&[&a, &b], &[1.0, -1.0], CmpOp::Gt, 0.0);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![2]);
        let bm = semilinear_scan(&[&a, &b], &[1.0, -1.0], CmpOp::Eq, 0.0);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn empty_columns() {
        let bm = semilinear_scan(&[], &[], CmpOp::Lt, 0.0);
        assert!(bm.is_empty());
        let empty: &[u32] = &[];
        let bm = semilinear_scan(&[empty], &[1.0], CmpOp::Lt, 0.0);
        assert!(bm.is_empty());
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn coefficient_mismatch_panics() {
        let a: Vec<u32> = vec![1];
        semilinear_scan(&[&a], &[1.0, 2.0], CmpOp::Lt, 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_columns_panic() {
        let a: Vec<u32> = vec![1, 2];
        let b: Vec<u32> = vec![1];
        semilinear_scan(&[&a, &b], &[1.0, 1.0], CmpOp::Lt, 0.0);
    }
}
