//! A packed bitmap used as the CPU-side selection vector.
//!
//! The CPU baselines mirror the GPU algorithms' stencil buffer with a
//! bitmap: one bit per record, word-parallel boolean combination. This is
//! the representation Zhou & Ross-style SIMD scan implementations produce,
//! and what the paper's "compiler-optimized SIMD implementation" would
//! materialize for a selection.

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap over record indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` records.
    pub fn zeros(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones bitmap over `len` records.
    pub fn ones(len: usize) -> Bitmap {
        let mut bm = Bitmap {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build a bitmap by evaluating `f` at every index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmap {
        let mut bm = Bitmap::zeros(len);
        for i in 0..len {
            if f(i) {
                bm.set(i, true);
            }
        }
        bm
    }

    /// Clear any bits beyond `len` in the last word (invariant after
    /// whole-word operations like `not`).
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of records covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at `index`.
    #[inline(always)]
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len);
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Set bit at `index`.
    #[inline(always)]
    pub fn set(&mut self, index: usize, value: bool) {
        debug_assert!(index < self.len);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Population count: the number of selected records.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Selectivity as a fraction in `[0, 1]` (0 for an empty bitmap).
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// In-place intersection. Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place union. Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// In-place symmetric difference. Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Raw word storage (for word-parallel consumers).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Store a full 64-bit word of results at word index `word_index`.
    /// Bits beyond `len` in the final word are masked off. Used by scans
    /// that build 64 comparison results at a time.
    pub fn set_word(&mut self, word_index: usize, word: u64) {
        self.words[word_index] = word;
        if word_index == self.words.len() - 1 {
            self.mask_tail();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 100);
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.get(99));
        assert_eq!(o.selectivity(), 1.0);
    }

    #[test]
    fn ones_masks_tail() {
        // 65 bits: second word must only have 1 bit set.
        let o = Bitmap::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.words()[1], 1);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::zeros(130);
        for i in [0, 63, 64, 127, 128, 129] {
            bm.set(i, true);
            assert!(bm.get(i));
        }
        assert_eq!(bm.count_ones(), 6);
        bm.set(64, false);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 5);
    }

    #[test]
    fn boolean_ops() {
        let a = Bitmap::from_fn(10, |i| i % 2 == 0); // 0,2,4,6,8
        let b = Bitmap::from_fn(10, |i| i < 5); // 0..5

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4]);

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 6, 8]
        );

        let mut xor = a.clone();
        xor.xor_assign(&b);
        assert_eq!(xor.iter_ones().collect::<Vec<_>>(), vec![1, 3, 6, 8]);

        let mut not = a.clone();
        not.not_assign();
        assert_eq!(not.iter_ones().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        assert_eq!(not.count_ones(), 5, "complement must not leak tail bits");
    }

    #[test]
    fn not_assign_twice_is_identity() {
        let a = Bitmap::from_fn(77, |i| i % 3 == 0);
        let mut b = a.clone();
        b.not_assign();
        b.not_assign();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = Bitmap::zeros(10);
        let b = Bitmap::zeros(11);
        a.and_assign(&b);
    }

    #[test]
    fn iter_ones_order() {
        let bm = Bitmap::from_fn(200, |i| i % 37 == 0);
        let ones: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 37, 74, 111, 148, 185]);
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::zeros(0);
        assert!(bm.is_empty());
        assert_eq!(bm.selectivity(), 0.0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn from_fn_matches_predicate() {
        let bm = Bitmap::from_fn(1000, |i| i * i % 7 == 1);
        for i in 0..1000 {
            assert_eq!(bm.get(i), i * i % 7 == 1);
        }
    }
}
