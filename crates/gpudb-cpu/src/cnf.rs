//! CPU evaluation of boolean predicate combinations in conjunctive normal
//! form — the baseline for the paper's `EvalCNF` (Routine 4.3).
//!
//! The representation mirrors the paper's: a CNF `A1 ∧ A2 ∧ ... ∧ Ak`
//! where each clause `Ai = B1 ∨ B2 ∨ ... ∨ Bmi` is a disjunction of simple
//! predicates of the form `attribute op constant`. NOT is eliminated by
//! inverting the comparison operator (§4.2).

use crate::bitmap::Bitmap;
use crate::scan::{scan_u32, CmpOp};
use serde::{Deserialize, Serialize};

/// A simple predicate `column[i] op constant`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Index of the attribute column.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub constant: u32,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(column: usize, op: CmpOp, constant: u32) -> Predicate {
        Predicate {
            column,
            op,
            constant,
        }
    }

    /// Evaluate the predicate for a single record.
    #[inline]
    pub fn eval(&self, columns: &[&[u32]], row: usize) -> bool {
        self.op.eval(columns[self.column][row], self.constant)
    }
}

/// A disjunction of simple predicates.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Clause {
    /// The OR-ed predicates.
    pub predicates: Vec<Predicate>,
}

impl Clause {
    /// A clause with a single predicate.
    pub fn single(p: Predicate) -> Clause {
        Clause {
            predicates: vec![p],
        }
    }

    /// A clause OR-ing several predicates.
    pub fn any(predicates: Vec<Predicate>) -> Clause {
        Clause { predicates }
    }
}

/// A conjunction of clauses.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Cnf {
    /// The AND-ed clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// The empty conjunction (TRUE).
    pub fn always_true() -> Cnf {
        Cnf::default()
    }

    /// Build a CNF from clauses.
    pub fn new(clauses: Vec<Clause>) -> Cnf {
        Cnf { clauses }
    }

    /// A pure conjunction of simple predicates (one predicate per clause) —
    /// the multi-attribute query shape of the paper's Figure 5.
    pub fn all_of(predicates: Vec<Predicate>) -> Cnf {
        Cnf {
            clauses: predicates.into_iter().map(Clause::single).collect(),
        }
    }

    /// Largest column index referenced, if any.
    pub fn max_column(&self) -> Option<usize> {
        self.clauses
            .iter()
            .flat_map(|c| c.predicates.iter())
            .map(|p| p.column)
            .max()
    }

    /// Evaluate the CNF for a single record (reference semantics for
    /// testing; the scan path below is the optimized baseline).
    pub fn eval_row(&self, columns: &[&[u32]], row: usize) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.predicates.iter().any(|p| p.eval(columns, row)))
    }
}

/// Evaluate a CNF over columnar data with branch-free scans and
/// word-parallel boolean combination.
///
/// Each simple predicate is one sequential scan; each clause ORs its
/// predicate bitmaps; the clause bitmaps are AND-folded. An empty CNF is
/// TRUE (all records selected), matching the paper's `C0 = TRUE`.
pub fn eval_cnf(columns: &[&[u32]], cnf: &Cnf) -> Bitmap {
    let len = columns.first().map_or(0, |c| c.len());
    debug_assert!(columns.iter().all(|c| c.len() == len));
    let mut result = Bitmap::ones(len);
    for clause in &cnf.clauses {
        let mut clause_bm: Option<Bitmap> = None;
        for p in &clause.predicates {
            let bm = scan_u32(columns[p.column], p.op, p.constant);
            match &mut clause_bm {
                None => clause_bm = Some(bm),
                Some(acc) => acc.or_assign(&bm),
            }
        }
        // An empty clause is an empty disjunction: FALSE.
        let clause_bm = clause_bm.unwrap_or_else(|| Bitmap::zeros(len));
        result.and_assign(&clause_bm);
    }
    result
}

/// Evaluate a range query `low <= column <= high` as the two-predicate CNF
/// the paper describes in §4.2 ("Range Queries").
pub fn eval_range(values: &[u32], low: u32, high: u32) -> Bitmap {
    let mut bm = scan_u32(values, CmpOp::Ge, low);
    bm.and_assign(&scan_u32(values, CmpOp::Le, high));
    bm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> (Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..200).map(|i| (i * 13) % 100).collect();
        let b: Vec<u32> = (0..200).map(|i| (i * 29 + 7) % 100).collect();
        (a, b)
    }

    #[test]
    fn empty_cnf_is_true() {
        let (a, _) = columns();
        let bm = eval_cnf(&[&a], &Cnf::always_true());
        assert_eq!(bm.count_ones(), 200);
    }

    #[test]
    fn single_predicate_cnf() {
        let (a, _) = columns();
        let cnf = Cnf::all_of(vec![Predicate::new(0, CmpOp::Gt, 50)]);
        let bm = eval_cnf(&[&a], &cnf);
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(bm.get(i), v > 50);
        }
    }

    #[test]
    fn conjunction_of_two_attributes() {
        let (a, b) = columns();
        let cnf = Cnf::all_of(vec![
            Predicate::new(0, CmpOp::Ge, 30),
            Predicate::new(1, CmpOp::Lt, 70),
        ]);
        let bm = eval_cnf(&[&a, &b], &cnf);
        for i in 0..200 {
            assert_eq!(bm.get(i), a[i] >= 30 && b[i] < 70, "row {i}");
        }
    }

    #[test]
    fn disjunction_within_clause() {
        let (a, b) = columns();
        let cnf = Cnf::new(vec![Clause::any(vec![
            Predicate::new(0, CmpOp::Lt, 10),
            Predicate::new(1, CmpOp::Ge, 90),
        ])]);
        let bm = eval_cnf(&[&a, &b], &cnf);
        for i in 0..200 {
            assert_eq!(bm.get(i), a[i] < 10 || b[i] >= 90, "row {i}");
        }
    }

    #[test]
    fn full_cnf_matches_row_semantics() {
        let (a, b) = columns();
        let cnf = Cnf::new(vec![
            Clause::any(vec![
                Predicate::new(0, CmpOp::Lt, 40),
                Predicate::new(1, CmpOp::Gt, 60),
            ]),
            Clause::any(vec![
                Predicate::new(0, CmpOp::Ne, 13),
                Predicate::new(1, CmpOp::Eq, 7),
            ]),
            Clause::single(Predicate::new(1, CmpOp::Le, 95)),
        ]);
        let cols: Vec<&[u32]> = vec![&a, &b];
        let bm = eval_cnf(&cols, &cnf);
        for i in 0..200 {
            assert_eq!(bm.get(i), cnf.eval_row(&cols, i), "row {i}");
        }
    }

    #[test]
    fn empty_clause_is_false() {
        let (a, _) = columns();
        let cnf = Cnf::new(vec![Clause::default()]);
        let bm = eval_cnf(&[&a], &cnf);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn range_matches_two_predicates() {
        let (a, _) = columns();
        let bm = eval_range(&a, 25, 75);
        let cnf = Cnf::all_of(vec![
            Predicate::new(0, CmpOp::Ge, 25),
            Predicate::new(0, CmpOp::Le, 75),
        ]);
        assert_eq!(bm, eval_cnf(&[&a], &cnf));
    }

    #[test]
    fn range_boundaries_inclusive() {
        let values = vec![10u32, 20, 30, 40, 50];
        let bm = eval_range(&values, 20, 40);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn max_column_reported() {
        let cnf = Cnf::new(vec![
            Clause::single(Predicate::new(2, CmpOp::Lt, 1)),
            Clause::single(Predicate::new(5, CmpOp::Gt, 1)),
        ]);
        assert_eq!(cnf.max_column(), Some(5));
        assert_eq!(Cnf::always_true().max_column(), None);
    }
}
