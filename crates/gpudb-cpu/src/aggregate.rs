//! CPU aggregation baselines: SUM, COUNT, AVG, MIN, MAX — the accumulator
//! side of the paper's Figure 10 and the scalar aggregates of §4.3.

use crate::bitmap::Bitmap;

/// Exact sum of a `u32` column in a `u64` accumulator.
///
/// The loop is unrolled over four lanes to mirror the 4-wide SIMD execution
/// of the paper's "compiler-optimized" baseline; the compiler vectorizes
/// this shape readily.
pub fn sum(values: &[u32]) -> u64 {
    let mut lanes = [0u64; 4];
    let chunks = values.chunks_exact(4);
    let remainder = chunks.remainder();
    for chunk in chunks {
        lanes[0] += chunk[0] as u64;
        lanes[1] += chunk[1] as u64;
        lanes[2] += chunk[2] as u64;
        lanes[3] += chunk[3] as u64;
    }
    let mut total: u64 = lanes.iter().sum();
    for &v in remainder {
        total += v as u64;
    }
    total
}

/// Sum of the records selected by `mask`.
///
/// Uses a branch-free multiply by the mask bit, the shape a SIMD
/// implementation would use to avoid data-dependent branches.
pub fn sum_masked(values: &[u32], mask: &Bitmap) -> u64 {
    assert_eq!(values.len(), mask.len(), "mask length mismatch");
    let mut total = 0u64;
    for (word_idx, &word) in mask.words().iter().enumerate() {
        let base = word_idx * 64;
        let end = (base + 64).min(values.len());
        let mut w = word;
        // Iterate only set bits; for dense masks this is close to a full
        // scan, for sparse masks it is much cheaper.
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            let idx = base + bit;
            debug_assert!(idx < end);
            total += values[idx] as u64;
        }
    }
    total
}

/// Average (`None` for an empty column). AVG = SUM / COUNT, as §4.3.3.
pub fn avg(values: &[u32]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(sum(values) as f64 / values.len() as f64)
    }
}

/// Average over the selected subset.
pub fn avg_masked(values: &[u32], mask: &Bitmap) -> Option<f64> {
    let count = mask.count_ones();
    if count == 0 {
        None
    } else {
        Some(sum_masked(values, mask) as f64 / count as f64)
    }
}

/// Minimum value (`None` for an empty column).
pub fn min(values: &[u32]) -> Option<u32> {
    values.iter().copied().min()
}

/// Maximum value (`None` for an empty column).
pub fn max(values: &[u32]) -> Option<u32> {
    values.iter().copied().max()
}

/// Minimum over the selected subset.
pub fn min_masked(values: &[u32], mask: &Bitmap) -> Option<u32> {
    mask.iter_ones().map(|i| values[i]).min()
}

/// Maximum over the selected subset.
pub fn max_masked(values: &[u32], mask: &Bitmap) -> Option<u32> {
    mask.iter_ones().map(|i| values[i]).max()
}

/// Extract the selected values into a fresh vector — the copy the paper's
/// CPU baseline performs before running `QuickSelect` on a subset ("we have
/// copied the valid data into an array and passed it as a parameter to
/// QuickSelect", §5.9 Test 3).
pub fn extract_masked(values: &[u32], mask: &Bitmap) -> Vec<u32> {
    assert_eq!(values.len(), mask.len(), "mask length mismatch");
    mask.iter_ones().map(|i| values[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_iter_reference() {
        for len in [0usize, 1, 3, 4, 5, 100, 1003] {
            let values: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(2654435761) >> 8)
                .collect();
            let expected: u64 = values.iter().map(|&v| v as u64).sum();
            assert_eq!(sum(&values), expected, "len {len}");
        }
    }

    #[test]
    fn sum_no_overflow_at_24_bit_scale() {
        // One million maximal 24-bit values must not overflow u64.
        let values = vec![(1u32 << 24) - 1; 1_000_000];
        assert_eq!(sum(&values), ((1u64 << 24) - 1) * 1_000_000);
    }

    #[test]
    fn masked_sum() {
        let values: Vec<u32> = (0..130).collect();
        let mask = Bitmap::from_fn(130, |i| i % 2 == 0);
        let expected: u64 = (0..130).filter(|i| i % 2 == 0).sum::<usize>() as u64;
        assert_eq!(sum_masked(&values, &mask), expected);
        assert_eq!(sum_masked(&values, &Bitmap::zeros(130)), 0);
        assert_eq!(sum_masked(&values, &Bitmap::ones(130)), sum(&values));
    }

    #[test]
    fn averages() {
        assert_eq!(avg(&[]), None);
        assert_eq!(avg(&[2, 4, 6]), Some(4.0));
        let mask = Bitmap::from_fn(3, |i| i > 0);
        assert_eq!(avg_masked(&[2, 4, 6], &mask), Some(5.0));
        assert_eq!(avg_masked(&[2, 4, 6], &Bitmap::zeros(3)), None);
    }

    #[test]
    fn min_max() {
        let values = vec![5u32, 1, 9, 3];
        assert_eq!(min(&values), Some(1));
        assert_eq!(max(&values), Some(9));
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        let mask = Bitmap::from_fn(4, |i| i != 1 && i != 2);
        assert_eq!(min_masked(&values, &mask), Some(3));
        assert_eq!(max_masked(&values, &mask), Some(5));
        assert_eq!(min_masked(&values, &Bitmap::zeros(4)), None);
    }

    #[test]
    fn extraction_preserves_order() {
        let values = vec![10u32, 20, 30, 40, 50];
        let mask = Bitmap::from_fn(5, |i| i % 2 == 0);
        assert_eq!(extract_masked(&values, &mask), vec![10, 30, 50]);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn masked_sum_length_checked() {
        sum_masked(&[1, 2, 3], &Bitmap::zeros(4));
    }
}
