//! # gpudb-cpu — optimized CPU baselines
//!
//! The comparison side of the SIGMOD 2004 reproduction: the paper measures
//! its GPU algorithms against "an optimized CPU implementation" compiled
//! with the Intel compiler's vectorization, multithreading and IPO on dual
//! 2.8 GHz Xeons (§5.2). This crate provides the equivalent Rust baselines:
//!
//! * [`scan`] — branch-free, auto-vectorizable predicate scans;
//! * [`bitmap`] — packed selection vectors with word-parallel boolean ops;
//! * [`cnf`] — conjunctive-normal-form evaluation over columns;
//! * [`semilinear`] — f32 dot-product scans;
//! * [`quickselect`] — Hoare's FIND, the baseline for `KthLargest`;
//! * [`aggregate`] — SUM/COUNT/AVG/MIN/MAX, plain and masked;
//! * [`parallel`] — multithreaded scan variants (crossbeam);
//! * [`cost`] — a 2004 Xeon cost model calibrated to the paper's ratios.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod aggregate;
pub mod bitmap;
pub mod cnf;
pub mod cost;
pub mod parallel;
pub mod quickselect;
pub mod scan;
pub mod semilinear;

pub use bitmap::Bitmap;
pub use cnf::{Clause, Cnf, Predicate};
pub use cost::CpuCostModel;
pub use scan::CmpOp;
