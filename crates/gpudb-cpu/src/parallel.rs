//! Multithreaded scan variants.
//!
//! The paper's CPU baseline enables the Intel compiler's `-QParallel`
//! multithreading on dual hyper-threaded Xeons (§5.2). These helpers
//! partition a column across threads with `crossbeam::scope` and stitch the
//! per-chunk bitmaps together; chunk boundaries are multiples of 64 so each
//! worker owns whole bitmap words.

use crate::bitmap::Bitmap;
use crate::scan::{scan_u32, CmpOp};

/// Scan a column with up to `threads` worker threads.
///
/// Falls back to the sequential scan for small inputs where thread startup
/// dominates. The result is identical to [`scan_u32`].
pub fn par_scan_u32(values: &[u32], op: CmpOp, constant: u32, threads: usize) -> Bitmap {
    let threads = threads.max(1);
    const MIN_PER_THREAD: usize = 1 << 14;
    if threads == 1 || values.len() < 2 * MIN_PER_THREAD {
        return scan_u32(values, op, constant);
    }
    // Chunk sizes are multiples of 64 so each chunk's bitmap words can be
    // copied verbatim into the output.
    let chunks = threads.min(values.len() / MIN_PER_THREAD).max(1);
    let chunk_len = (values.len() / chunks + 63) & !63;

    let mut partials: Vec<Option<Bitmap>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < values.len() {
            let end = (start + chunk_len).min(values.len());
            let slice = &values[start..end];
            handles.push(scope.spawn(move |_| scan_u32(slice, op, constant)));
            start = end;
        }
        partials = handles
            .into_iter()
            .map(|h| Some(h.join().expect("scan worker panicked")))
            .collect();
    })
    .expect("scan scope panicked");

    let mut out = Bitmap::zeros(values.len());
    let mut word_offset = 0usize;
    for partial in partials.into_iter().flatten() {
        for (i, &w) in partial.words().iter().enumerate() {
            out.set_word(word_offset + i, w);
        }
        word_offset += partial.len().div_ceil(64);
    }
    out
}

/// Parallel count of matches, merging per-chunk counts.
pub fn par_count_u32(values: &[u32], op: CmpOp, constant: u32, threads: usize) -> usize {
    let threads = threads.max(1);
    const MIN_PER_THREAD: usize = 1 << 14;
    if threads == 1 || values.len() < 2 * MIN_PER_THREAD {
        return crate::scan::count_u32(values, op, constant);
    }
    let chunks = threads.min(values.len() / MIN_PER_THREAD).max(1);
    let chunk_len = values.len().div_ceil(chunks);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in values.chunks(chunk_len) {
            handles.push(scope.spawn(move |_| crate::scan::count_u32(chunk, op, constant)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("count worker panicked"))
            .sum()
    })
    .expect("count scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_scan_matches_sequential() {
        let values: Vec<u32> = (0..200_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 1000)
            .collect();
        for threads in [1, 2, 4, 8] {
            let par = par_scan_u32(&values, CmpOp::Ge, 400, threads);
            let seq = scan_u32(&values, CmpOp::Ge, 400);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let values: Vec<u32> = (0..150_000u32).map(|i| i % 777).collect();
        for threads in [1, 3, 7] {
            assert_eq!(
                par_count_u32(&values, CmpOp::Lt, 400, threads),
                crate::scan::count_u32(&values, CmpOp::Lt, 400),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn small_inputs_use_sequential_path() {
        let values: Vec<u32> = (0..100).collect();
        let par = par_scan_u32(&values, CmpOp::Lt, 50, 8);
        assert_eq!(par.count_ones(), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let values: Vec<u32> = (0..100).collect();
        assert_eq!(par_count_u32(&values, CmpOp::Lt, 10, 0), 10);
    }

    #[test]
    fn empty_input() {
        assert!(par_scan_u32(&[], CmpOp::Lt, 1, 4).is_empty());
        assert_eq!(par_count_u32(&[], CmpOp::Lt, 1, 4), 0);
    }
}
