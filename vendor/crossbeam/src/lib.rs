//! Offline shim for the subset of `crossbeam` this workspace uses:
//! [`thread::scope`] with crossbeam's closure signature (`spawn` passes the
//! scope into the worker closure), implemented over `std::thread::scope`.

/// Scoped threads with crossbeam's API shape.
pub mod thread {
    use std::any::Any;

    /// A scope handle; workers receive `&Scope` (crossbeam convention).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the worker and return its result, or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope (crossbeam passes
        /// it so workers can spawn sub-workers).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before this
    /// returns. Unlike crossbeam this cannot observe unjoined panics as an
    /// `Err` (std re-raises them), so the result is always `Ok` — callers
    /// in this workspace `.expect()` it either way.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
