//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`].
//!
//! Output is deterministic: object keys keep insertion order, floats are
//! rendered with Rust's shortest round-trip formatting (`{:?}`), so equal
//! inputs produce byte-identical text.

pub use serde::{Error, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom(format!(
                    "cannot serialize non-finite float {f} as JSON"
                )));
            }
            // `{:?}` is the shortest representation that round-trips and
            // always keeps a `.0` or exponent, so the value re-parses as a
            // float.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape bytes"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("fig3".to_string())),
            (
                "points".to_string(),
                Value::Array(vec![Value::Float(1.5), Value::Int(-2), Value::UInt(7)]),
            ),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        assert_eq!(
            to_string(&Wrapper(v.clone())).unwrap(),
            r#"{"name":"fig3","points":[1.5,-2,7],"ok":true,"none":null}"#
        );
        let pretty = to_string_pretty(&Wrapper(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"fig3\""));
    }

    struct Wrapper(Value);
    impl serde::Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a": [1, 2.5, -3, 18446744073709551615], "s": "x\n\"y\" é", "b": [true, false, null], "empty": {}, "earr": []}"#;
        let v: Value = {
            struct Raw(Value);
            impl serde::Deserialize for Raw {
                fn from_value(value: &Value) -> Result<Raw, Error> {
                    Ok(Raw(value.clone()))
                }
            }
            from_str::<Raw>(text).unwrap().0
        };
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[3],
            Value::UInt(u64::MAX)
        );
        assert_eq!(v.get("s"), Some(&Value::Str("x\n\"y\" é".to_string())));
        assert_eq!(v.get("empty"), Some(&Value::Object(vec![])));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[
            0.1f64,
            1.0 / 3.0,
            1e-12,
            123_456_789.123_456_79,
            -0.0,
            2e300,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} vs {back} via {text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.5, -4.25)];
        let text = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<String>("\"unterminated").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
    }
}
