//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim. Parses the item's token stream directly (no
//! `syn`/`quote`) and emits impls of the shim's `to_value`/`from_value`
//! traits.
//!
//! Supported shapes — everything this workspace derives:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   serde's default representation);
//! * no generics, no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the shim's `Serialize` (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive the shim's `Deserialize` (`fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error parses")
}

// ------------------------------------------------------------------ parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip `#[...]` / `#![...]` attributes (doc comments arrive this way).
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Punct(p)) = self.peek() {
                        if p.as_char() == '!' {
                            self.pos += 1;
                        }
                    }
                    // The bracketed attribute body.
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!(
                "serde shim derive: expected {what}, found {other:?}"
            )),
        }
    }

    /// Skip tokens until a top-level `,` (consumed) or end of stream,
    /// tracking `<...>` nesting so type arguments don't end the field.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("item name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => {
                    return Err(format!(
                        "serde shim derive: unsupported struct body for `{name}`: {other:?}"
                    ))
                }
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => {
                    return Err(format!(
                        "serde shim derive: expected enum body for `{name}`, found {other:?}"
                    ))
                }
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!(
            "serde shim derive: expected struct or enum, found `{other}`"
        )),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        names.push(c.expect_ident("field name")?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, found {other:?}")),
        }
        c.skip_type();
    }
    Ok(Fields::Named(names))
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_visibility();
        c.skip_type();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name")?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                c.pos += 1;
                parse_named_fields(body)?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                c.pos += 1;
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    c.pos += 1;
                    break;
                }
                _ => {}
            }
            c.pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
                 }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::field(entries, {f:?}, {name:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let entries = value.as_object().ok_or_else(|| \
                         ::serde::Error::type_mismatch(concat!(\"object for \", {name:?}), value))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = match value.as_array() {{\n\
                         ::std::option::Option::Some(items) if items.len() == {n} => items,\n\
                         _ => return ::std::result::Result::Err(\
                         ::serde::Error::type_mismatch(\
                         concat!(\"{n}-element array for \", {name:?}), value)),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(\
                     ::serde::Error::type_mismatch(concat!(\"null for \", {name:?}), other)),\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname})")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                 let items = match inner.as_array() {{\n\
                                 ::std::option::Option::Some(items) if items.len() == {n} => items,\n\
                                 _ => return ::std::result::Result::Err(\
                                 ::serde::Error::type_mismatch(\
                                 concat!(\"{n}-element array for \", {name:?}, \"::\", {vname:?}), inner)),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(entries, {f:?}, {name:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vname:?} => {{\n\
                                 let entries = inner.as_object().ok_or_else(|| \
                                 ::serde::Error::type_mismatch(\
                                 concat!(\"object for \", {name:?}, \"::\", {vname:?}), inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!("unit variants filtered out"),
                    }
                })
                .collect();

            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(concat!(\"unknown unit variant `{{}}` for \", {name:?}), other))),\n\
                 }},\n\
                 ::serde::Value::Object(entries_outer) if entries_outer.len() == 1 => {{\n\
                 let (tag, inner) = &entries_outer[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {payload}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(concat!(\"unknown variant `{{}}` for \", {name:?}), other))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::Error::type_mismatch(concat!(\"enum value for \", {name:?}), other)),\n\
                 }}\n\
                 }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                payload = if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(",\n"))
                },
            )
        }
    }
}
