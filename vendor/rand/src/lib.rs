//! Offline shim for the subset of `rand 0.8` this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`SeedableRng::seed_from_u64`]. The value stream is deterministic for a
//! given seed but is **not** bit-compatible with crates.io `rand`; all
//! consumers in this workspace are seeded and self-consistent.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with a uniform "standard"
/// distribution (full integer range, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a standard-distributed value (`rng.gen::<f64>()` is `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// Like the real crate: `&mut R` forwards, so generic code taking
// `R: Rng + ?Sized` can call the `Self: Sized` methods through autoref.
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for test-data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden point of the cycle.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a range. One generic `SampleRange`
/// impl per range shape keeps integer-literal inference working
/// (`gen_range(0..10)` in a `u32` context), matching the real crate's
/// structure.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as $wide).wrapping_sub(start as $wide);
                start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                let v = start + unit * (end - start);
                // Guard against rounding up to the excluded endpoint.
                if v >= end { start } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0u32..=3);
            assert!(x <= 3);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((30_000..40_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
