//! The JSON-shaped value tree that the shim's `Serialize`/`Deserialize`
//! traits round-trip through.

use std::fmt;

/// A dynamically-typed value. Objects keep insertion order so rendered
/// output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used for values above `i64::MAX` and all
    /// unsigned sources).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as an array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Fetch a named field from an object's entries (derive-generated code).
pub fn field<'a>(
    entries: &'a [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {type_name}")))
}

/// Serialization/deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    /// Standard "expected X, found Y" error.
    pub fn type_mismatch(expected: &str, found: &Value) -> Error {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("missing"), None);
        assert!(field(v.as_object().unwrap(), "b", "T").is_ok());
        let err = field(v.as_object().unwrap(), "c", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `c`"));
    }
}
