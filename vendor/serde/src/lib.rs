//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor-based data model, this shim round-trips
//! every value through one JSON-shaped [`Value`] enum:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`;
//! * `#[derive(Serialize, Deserialize)]` — hand-rolled derives from
//!   `serde_derive` covering structs (named/tuple/unit) and enums
//!   (unit/tuple/struct variants), matching serde's externally-tagged
//!   representation.
//!
//! Rendering `Value` to/from JSON text lives in the sibling `serde_json`
//! shim.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{field, Error, Value};

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- Serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// -------------------------------------------------------------- Deserialize

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let out = match value {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::type_mismatch(stringify!($t), value))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::type_mismatch("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::type_mismatch("single-char string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], Error> {
        let items = match value {
            Value::Array(items) if items.len() == N => items,
            other => return Err(Error::type_mismatch("fixed-size array", other)),
        };
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length changed during deserialization"))
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<($($name,)+), Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::type_mismatch(
                        concat!($len, "-element array"),
                        other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; A: 0)
    (2; A: 0, B: 1)
    (3; A: 0, B: 1, C: 2)
    (4; A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let value = v.to_value();
        assert_eq!(T::from_value(&value).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(42u32);
        round_trip(-17i64);
        round_trip(u64::MAX);
        round_trip(1.5f64);
        round_trip("hello".to_string());
        round_trip(Some(3u8));
        round_trip(Option::<u8>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip([0.5f64, 0.25]);
        round_trip((1u32, 2.5f64));
        round_trip(vec![(1.0f64, 2.0f64), (3.0, 4.0)]);
    }

    #[test]
    fn int_bounds_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::Int(7)).unwrap(), 7.0);
    }
}
