//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Strategy choosing uniformly from `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let strategy = select(vec!['a', 'b', 'c']);
        let mut rng = TestRng::deterministic("select");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strategy.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
