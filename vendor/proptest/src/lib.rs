//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro expands each property into a normal `#[test]`
//! that draws `config.cases` deterministic random inputs (seeded from the
//! test's name, so runs are reproducible across machines) and executes the
//! body. There is **no shrinking**: a failing case panics with the case
//! number so it can be replayed by re-running the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod sample;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so every run draws the same cases.
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a property case failed. Bodies may `return Err(TestCaseError::fail(..))`
/// or `return Ok(())` early, as with the real crate.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this case.
    Fail(String),
    /// The drawn input is outside the property's domain.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "property failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }

    /// Build a recursive strategy: `self` is the leaf; `branch` receives a
    /// strategy for the previous depth level and returns the composite
    /// level. `depth` bounds the recursion; the size/branch hints of the
    /// real crate are accepted and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = one_of(vec![leaf.clone(), branch(level).boxed()]);
        }
        level
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
where
    T: 'static,
{
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    OneOf { choices }.boxed()
}

struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.choices.len());
        self.choices[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

// ----------------------------------------------------------------- `any`

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy for any value of `T` (`any::<u32>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ----------------------------------------------------------- range + tuple

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_float_ranges!(f32, f64);

// A `&str` strategy is a generation pattern (tiny subset of the real
// crate's regex support): literal chars, `.`/`\PC` (printable char),
// `\d`, `\w`, `\s` classes, and `{m,n}` / `{n}` / `*` / `+` / `?`
// quantifiers on the preceding atom.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let atom: fn(&mut TestRng) -> char = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any printable char (ASCII + a little UTF-8).
                        assert_eq!(chars.next(), Some('C'), "unsupported \\P class");
                        |rng| sample_printable(rng)
                    }
                    Some('d') => |rng| (b'0' + rng.rng().gen_range(0u8..10)) as char,
                    Some('w') => |rng| {
                        const WORD: &[u8] =
                            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                        WORD[rng.rng().gen_range(0..WORD.len())] as char
                    },
                    Some('s') => |rng| {
                        const WS: &[u8] = b" \t\n";
                        WS[rng.rng().gen_range(0..WS.len())] as char
                    },
                    Some(esc) => {
                        // Escaped literal: emit it directly (no quantifier fn).
                        emit_repeated(&mut out, &mut chars, rng, move |_| esc);
                        continue;
                    }
                    None => panic!("dangling escape in pattern {self:?}"),
                },
                '.' => |rng| sample_printable(rng),
                lit => {
                    emit_repeated(&mut out, &mut chars, rng, move |_| lit);
                    continue;
                }
            };
            emit_repeated(&mut out, &mut chars, rng, atom);
        }
        out
    }
}

/// Any printable character; mostly ASCII with some multi-byte UTF-8 mixed
/// in so consumers see non-trivial encodings.
fn sample_printable(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'λ', 'Ж', '→', '√', '你', '𝕏', '🙂'];
    if rng.rng().gen_bool(0.9) {
        (0x20u8 + rng.rng().gen_range(0u8..0x5F)) as char
    } else {
        EXOTIC[rng.rng().gen_range(0..EXOTIC.len())]
    }
}

/// Read an optional quantifier after an atom and emit that many samples.
fn emit_repeated<F: Fn(&mut TestRng) -> char>(
    out: &mut String,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    rng: &mut TestRng,
    atom: F,
) {
    let (low, high) = match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((low, high)) => (low.parse().unwrap(), high.parse().unwrap()),
                None => {
                    let n: usize = spec.parse().unwrap();
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    };
    let count = rng.rng().gen_range(low..=high);
    for _ in 0..count {
        out.push(atom(rng));
    }
}

macro_rules! strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ----------------------------------------------------------------- macros

/// Declare deterministic property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                // Like the real crate, the body runs in a closure returning
                // `Result<(), TestCaseError>` so `return Ok(())` /
                // `return Err(TestCaseError::fail(..))` both compile.
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    Ok(Ok(())) => {}
                    Ok(Err($crate::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::TestCaseError::Fail(reason))) => {
                        panic!(
                            "proptest shim: {} failed at case {}/{} (deterministic seed): {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            reason
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic seed)",
                            stringify!($name),
                            case + 1,
                            config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Assertion macro (no shrinking — delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assertion macro (no shrinking — delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assertion macro (no shrinking — delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(::std::vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop` path alias (`prop::collection::vec`, `prop::sample::select`).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        use rand::Rng;
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, f in -1.5f64..1.5, (a, b) in (0usize..4, any::<bool>())) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..1.5).contains(&f));
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(any::<u8>(), 2..6), c in prop::sample::select(vec![1u8, 2, 3])) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn mapped_and_oneof(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x),
        ]) {
            prop_assert!(v < 20 || (100..110).contains(&v));
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u32..100).prop_map(Tree::Leaf).prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }
}
