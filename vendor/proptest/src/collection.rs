//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length shapes accepted by [`vec`].
pub trait SizeRange {
    /// Draw a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn respects_size_range() {
        let strategy = vec(any::<u32>(), 3..7);
        let mut rng = TestRng::deterministic("vec-size");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = vec(any::<u32>(), 5usize);
        assert_eq!(exact.generate(&mut rng).len(), 5);
    }
}
