//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! No statistics, plots, or warm-up calibration: each `Bencher::iter`
//! target runs a small fixed number of times and the mean wall-clock is
//! printed, so `cargo bench` still produces skimmable numbers and the
//! bench targets keep compiling without the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many times [`Bencher::iter`] runs its closure.
const RUNS: u32 = 3;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation (accepted, reported alongside the timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Just a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs a benchmark body and records its timing.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Time `f`, running it [`RUNS`] times and keeping the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..RUNS {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / RUNS);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one("", &id.to_string(), None, f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim always runs a fixed count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim runs a fixed count.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&self.name, &id.to_string(), self.throughput, f);
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.to_string(), self.throughput, |b| {
            f(b, input)
        });
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { mean: None };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.mean {
        Some(mean) => {
            let per_unit = match throughput {
                Some(Throughput::Elements(n)) if n > 0 => {
                    format!("  ({:.1} ns/elem)", mean.as_nanos() as f64 / n as f64)
                }
                Some(Throughput::Bytes(n)) if n > 0 => {
                    format!("  ({:.1} ns/byte)", mean.as_nanos() as f64 / n as f64)
                }
                _ => String::new(),
            };
            println!(
                "bench {label:<60} {:>12.3} ms{per_unit}",
                mean.as_secs_f64() * 1e3
            );
        }
        None => println!("bench {label:<60} (no iter() call)"),
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("square", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).map(|i| i * i).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u32 * 7));
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
